//! One base+delta coding layer: the "Mid + Residual" core of the proposed
//! attribute codec (paper Sec. IV-A2).

use pcc_entropy::varint;
use std::num::NonZeroUsize;

/// The output of one coding layer over a sequence of 3-channel values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerEncoded {
    /// Per-segment base values (the per-channel medians).
    pub bases: Vec<[i32; 3]>,
    /// Quantized residuals, one per input value, in input order.
    pub residuals: Vec<[i32; 3]>,
    /// Segment boundaries: `starts[s]` is the first index of segment `s`
    /// (a final implicit boundary is the sequence length).
    pub starts: Vec<u32>,
    /// Quantization step applied to residuals.
    pub quant_step: i32,
}

impl LayerEncoded {
    /// Serializes the layer payload: header varints, segment starts and
    /// bases, then the residual stream as `(zero-run length, nonzero
    /// triple)` pairs — locality makes most residual triples all-zero, so
    /// runs dominate and the stream approaches a fraction of a byte per
    /// point on smooth content.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_layer(&mut out, self.quant_step, &self.starts, &self.bases, &self.residuals);
        out
    }

    /// Parses a payload produced by [`to_bytes`](Self::to_bytes) under
    /// [`pcc_types::Limits::default`].
    ///
    /// # Errors
    ///
    /// Propagates varint decoding errors on malformed input.
    pub fn from_bytes(input: &[u8]) -> Result<Self, pcc_entropy::Error> {
        Self::from_bytes_with(input, &pcc_types::Limits::default())
    }

    /// Parses a payload produced by [`to_bytes`](Self::to_bytes) under
    /// explicit resource [`pcc_types::Limits`]: the declared value count
    /// is bounded by `max_points`, the segment count by `max_blocks`, and
    /// the implied decode-side allocation (12 bytes per value and per
    /// base, 4 per start) by `max_alloc_bytes`. Pre-allocations are
    /// additionally capped by the input length, so even an in-limit
    /// header cannot reserve more memory than the payload could fill.
    ///
    /// # Errors
    ///
    /// Propagates varint decoding errors on malformed input and returns
    /// [`pcc_entropy::Error::LimitExceeded`] when a limit is hit.
    pub fn from_bytes_with(
        mut input: &[u8],
        limits: &pcc_types::Limits,
    ) -> Result<Self, pcc_entropy::Error> {
        let quant_step = varint::read_u64(&mut input)? as i32;
        let n64 = varint::read_u64(&mut input)?;
        let segs64 = varint::read_u64(&mut input)?;
        // `segs` is not bounded by `n`: the two-layer encoder serializes
        // its outer layer with an empty residual list but real segments.
        limits.check_points(n64)?;
        limits.check_blocks(segs64)?;
        let (n, segs) = (n64 as usize, segs64 as usize);
        limits.check_alloc(n64.saturating_mul(12).saturating_add(segs64.saturating_mul(16)))?;
        if quant_step < 1 {
            return Err(pcc_entropy::Error::CorruptRun);
        }
        // Every start and base costs at least one input byte, so the
        // input length bounds the pre-allocation even before limits bite.
        let mut starts = Vec::with_capacity(segs.min(input.len()));
        for _ in 0..segs {
            starts.push(varint::read_u64(&mut input)? as u32);
        }
        let mut bases = Vec::with_capacity(segs.min(input.len()));
        for _ in 0..segs {
            let mut b = [0i32; 3];
            for ch in &mut b {
                *ch = varint::read_i64(&mut input)? as i32;
            }
            bases.push(b);
        }
        let (&mode, mut input) =
            input.split_first().ok_or(pcc_entropy::Error::UnexpectedEnd)?;
        // `n` was already bounded by the check_alloc call above (12 bytes
        // per residual), so reserving it exactly is safe and avoids the
        // grow-by-doubling churn a capped reserve caused on large frames.
        let mut residuals = Vec::with_capacity(n);
        if mode != 0 {
            while residuals.len() < n {
                let zrun = varint::read_u64(&mut input)? as usize;
                if zrun > n - residuals.len() {
                    return Err(pcc_entropy::Error::CorruptRun);
                }
                residuals.extend(std::iter::repeat_n([0i32; 3], zrun));
                if residuals.len() < n {
                    let mut r = [0i32; 3];
                    for ch in &mut r {
                        *ch = varint::read_i64(&mut input)? as i32;
                    }
                    residuals.push(r);
                }
            }
        } else {
            for _ in 0..n {
                let mut r = [0i32; 3];
                for ch in &mut r {
                    *ch = varint::read_i64(&mut input)? as i32;
                }
                residuals.push(r);
            }
        }
        Ok(LayerEncoded { bases, residuals, starts, quant_step })
    }
}

/// Serializes one layer payload (see [`LayerEncoded::to_bytes`] for the
/// wire layout), appending to `out`. This free-function form lets frame
/// arenas serialize straight from reused base/residual buffers without
/// materializing a `LayerEncoded`; `to_bytes` delegates here, so there is
/// exactly one serializer.
// Serializer over caller arrays; loop indices are bounded by the length
// checks in the while conditions.
#[allow(clippy::indexing_slicing)]
pub fn write_layer(
    out: &mut Vec<u8>,
    quant_step: i32,
    starts: &[u32],
    bases: &[[i32; 3]],
    residuals: &[[i32; 3]],
) {
    varint::write_u64(out, quant_step as u64);
    varint::write_u64(out, residuals.len() as u64);
    varint::write_u64(out, bases.len() as u64);
    for s in starts {
        varint::write_u64(out, *s as u64);
    }
    for b in bases {
        for &v in b {
            varint::write_i64(out, v as i64);
        }
    }
    // Pick the cheaper residual coding: zero-run pairs win when
    // locality zeroes out most triples; plain triples win on
    // gradient-heavy segments where runs would just add overhead.
    let zeros = residuals.iter().filter(|r| **r == [0; 3]).count();
    let zero_run_mode = zeros * 4 >= residuals.len();
    out.push(zero_run_mode as u8);
    if zero_run_mode {
        let mut i = 0;
        while i < residuals.len() {
            let mut zrun = 0u64;
            while i < residuals.len() && residuals[i] == [0; 3] {
                zrun += 1;
                i += 1;
            }
            varint::write_u64(out, zrun);
            if i < residuals.len() {
                for &v in &residuals[i] {
                    varint::write_i64(out, v as i64);
                }
                i += 1;
            }
        }
    } else {
        for r in residuals {
            for &v in r {
                varint::write_i64(out, v as i64);
            }
        }
    }
}

/// Splits `len` values into `segments` near-equal contiguous ranges,
/// returning the start index of each.
pub fn segment_starts(len: usize, segments: usize) -> Vec<u32> {
    let mut out = Vec::new();
    segment_starts_into(len, segments, &mut out);
    out
}

/// [`segment_starts`] writing into a caller-owned buffer (cleared first).
pub fn segment_starts_into(len: usize, segments: usize, out: &mut Vec<u32>) {
    out.clear();
    let segments = segments.clamp(1, len.max(1));
    out.extend((0..segments).map(|s| (s * len / segments) as u32));
}

/// Encodes one base+delta layer: per segment, the per-channel median is
/// the base; every value stores its quantized residual against the base.
///
/// All per-point work is independent (the modeled GPU runs it as two
/// kernels); the per-segment median is a small local reduction.
pub fn encode_layer(values: &[[i32; 3]], segments: usize, quant_step: i32) -> LayerEncoded {
    encode_layer_with_starts(values, segment_starts(values.len(), segments), quant_step)
}

/// [`encode_layer`] with an explicit host thread count.
pub fn encode_layer_threaded(
    values: &[[i32; 3]],
    segments: usize,
    quant_step: i32,
    threads: NonZeroUsize,
) -> LayerEncoded {
    encode_layer_with_starts_threaded(
        values,
        segment_starts(values.len(), segments),
        quant_step,
        threads,
    )
}

/// Like [`encode_layer`], but with caller-chosen segment boundaries —
/// the inter-frame codec aligns segments with its matched blocks.
///
/// # Panics
///
/// Panics if `quant_step < 1`, `starts` is empty or does not begin at 0,
/// or boundaries are not ascending within the value range.
pub fn encode_layer_with_starts(
    values: &[[i32; 3]],
    starts: Vec<u32>,
    quant_step: i32,
) -> LayerEncoded {
    encode_layer_with_starts_threaded(values, starts, quant_step, pcc_parallel::resolve(None))
}

/// [`encode_layer_with_starts`] with an explicit host thread count.
///
/// Segments are grouped into contiguous chunks; each chunk writes a
/// disjoint slice of the base and residual arrays (every segment belongs
/// to exactly one chunk), so the output is byte-identical at every thread
/// count.
pub fn encode_layer_with_starts_threaded(
    values: &[[i32; 3]],
    starts: Vec<u32>,
    quant_step: i32,
    threads: NonZeroUsize,
) -> LayerEncoded {
    let mut bases = Vec::new();
    let mut residuals = Vec::new();
    let mut median_scratch = Vec::new();
    encode_layer_with_starts_into(
        values,
        &starts,
        quant_step,
        threads,
        &mut bases,
        &mut residuals,
        &mut median_scratch,
    );
    LayerEncoded { bases, residuals, starts, quant_step }
}

/// [`encode_layer_with_starts_threaded`] writing into caller-owned
/// buffers — the allocation-free core every layer-encode entry point
/// funnels through. `bases`/`residuals` are cleared and refilled;
/// `median_scratch` is the per-segment channel scratch reused across
/// segments (it grows to the largest segment and then stays put).
///
/// On the single-threaded path this performs no heap allocation once the
/// three buffers have warmed to the working-set size.
///
/// # Panics
///
/// Same preconditions as [`encode_layer_with_starts`].
// Encoder side: the segment-start preconditions are asserted on entry,
// so every index below is in range.
#[allow(clippy::indexing_slicing)]
pub fn encode_layer_with_starts_into(
    values: &[[i32; 3]],
    starts: &[u32],
    quant_step: i32,
    threads: NonZeroUsize,
    bases: &mut Vec<[i32; 3]>,
    residuals: &mut Vec<[i32; 3]>,
    median_scratch: &mut Vec<i32>,
) {
    let _sp = pcc_probe::span("intra/layer_encode");
    assert!(quant_step >= 1, "quantization step must be >= 1");
    assert!(!starts.is_empty() && starts[0] == 0, "segment starts must begin at 0");
    assert!(
        starts.windows(2).all(|w| w[0] <= w[1]) && *starts.last().expect("non-empty") as usize <= values.len(),
        "segment starts must ascend within the value range"
    );
    bases.clear();
    bases.resize(starts.len(), [0i32; 3]);
    residuals.clear();
    residuals.resize(values.len(), [0i32; 3]);

    // One chunk handles segments seg_range = [s0, s1): it owns
    // bases[s0..s1] and residuals[starts[s0]..starts[s1]] — disjoint
    // contiguous slices across chunks. Every segment runs median (a small
    // local reduction) then the batched quantize kernel over its whole
    // slice.
    let encode_group = |seg_range: std::ops::Range<usize>,
                        bases_part: &mut [[i32; 3]],
                        resid_part: &mut [[i32; 3]],
                        scratch: &mut Vec<i32>| {
        let value_base = starts[seg_range.start] as usize;
        for (local_s, s) in seg_range.enumerate() {
            let start = starts[s] as usize;
            let end = starts.get(s + 1).map_or(values.len(), |&e| e as usize);
            let seg = &values[start..end];
            let base = median3(seg, scratch);
            bases_part[local_s] = base;
            let lo = start - value_base;
            quantize_segment(seg, base, quant_step, &mut resid_part[lo..lo + seg.len()]);
        }
    };

    let fan = pcc_parallel::effective_threads(threads, values.len()).min(starts.len());
    if fan <= 1 {
        encode_group(0..starts.len(), bases, residuals, median_scratch);
    } else {
        let seg_ranges = pcc_parallel::chunk_ranges(starts.len(), fan);
        let seg_cuts: Vec<usize> = seg_ranges[1..].iter().map(|r| r.start).collect();
        let value_cuts: Vec<usize> =
            seg_ranges[1..].iter().map(|r| starts[r.start] as usize).collect();
        let bases_parts = pcc_parallel::split_at_many(bases, &seg_cuts);
        let resid_parts = pcc_parallel::split_at_many(residuals, &value_cuts);
        let ctxs: Vec<_> = seg_ranges.into_iter().zip(bases_parts).collect();
        pcc_parallel::scope_run(resid_parts, ctxs, |_, (seg_range, bases_part), resid_part| {
            let mut scratch = Vec::new();
            encode_group(seg_range, bases_part, resid_part, &mut scratch);
        });
    }
}

/// Quantizes one segment against its base in a single batched pass over
/// the slice, with the per-step branches hoisted out of the inner loop:
///
/// * `q == 1` — a pure subtract, which the compiler auto-vectorizes;
/// * `q` a power of two (the only steps [`crate::IntraConfig`] produces)
///   — a branch-free sign/shift sequence, also vectorizable;
/// * general `q` — the reference [`div_round`] with the rounding bias
///   hoisted.
///
/// All three produce results identical to `div_round(v - base, q)` per
/// channel (asserted by the `quantize_segment_matches_div_round`
/// proptest below).
// Fixed-size [i32; 3] lanes indexed by a 0..3 loop.
#[allow(clippy::indexing_slicing)]
fn quantize_segment(seg: &[[i32; 3]], base: [i32; 3], q: i32, out: &mut [[i32; 3]]) {
    debug_assert_eq!(seg.len(), out.len());
    if q == 1 {
        for (o, v) in out.iter_mut().zip(seg) {
            *o = [v[0] - base[0], v[1] - base[1], v[2] - base[2]];
        }
    } else if q.count_ones() == 1 {
        let shift = q.trailing_zeros();
        let half = (q - 1) / 2;
        for (o, v) in out.iter_mut().zip(seg) {
            let mut r = [0i32; 3];
            for ch in 0..3 {
                let d = v[ch] - base[ch];
                // Ties toward zero via sign-magnitude: m is 0 or -1, so
                // `(x ^ m) - m` is |x| going in and restores the sign
                // coming out — no data-dependent branch in the loop body.
                let m = d >> 31;
                let mag = (d ^ m) - m;
                r[ch] = (((mag + half) >> shift) ^ m) - m;
            }
            *o = r;
        }
    } else {
        let half = (q - 1) / 2;
        for (o, v) in out.iter_mut().zip(seg) {
            let mut r = [0i32; 3];
            for ch in 0..3 {
                let d = v[ch] - base[ch];
                r[ch] = if d >= 0 { (d + half) / q } else { -((-d + half) / q) };
            }
            *o = r;
        }
    }
}

/// Decodes one layer back to its (quantization-rounded) values.
///
/// Malformed segment boundaries (from corrupt payloads) are clamped to
/// the value range rather than panicking; affected values decode as
/// zeros.
pub fn decode_layer(layer: &LayerEncoded) -> Vec<[i32; 3]> {
    decode_layer_threaded(layer, pcc_parallel::resolve(None))
}

/// [`decode_layer`] with an explicit host thread count.
///
/// Well-formed layers decode chunk-parallel over segment groups writing
/// disjoint output slices (byte-identical at every thread count);
/// malformed boundaries fall back to the clamping sequential path.
// Indices are validated by the `well_formed` guard below; malformed
// (wire-damaged) layers take the clamping sequential path instead.
#[allow(clippy::indexing_slicing)]
pub fn decode_layer_threaded(layer: &LayerEncoded, threads: NonZeroUsize) -> Vec<[i32; 3]> {
    let _sp = pcc_probe::span("intra/layer_decode");
    let n = layer.residuals.len();
    let starts = &layer.starts;
    let well_formed = layer.bases.len() >= starts.len()
        && starts.first() == Some(&0)
        && starts.windows(2).all(|w| w[0] <= w[1])
        && starts.last().is_none_or(|&s| (s as usize) <= n);
    let fan = pcc_parallel::effective_threads(threads, n).min(starts.len().max(1));
    if !well_formed || fan <= 1 {
        return decode_layer_sequential(layer);
    }
    let mut out = vec![[0i32; 3]; n];
    let seg_ranges = pcc_parallel::chunk_ranges(starts.len(), fan);
    let value_cuts: Vec<usize> =
        seg_ranges[1..].iter().map(|r| starts[r.start] as usize).collect();
    let parts = pcc_parallel::split_at_many(&mut out, &value_cuts);
    pcc_parallel::scope_run(parts, seg_ranges, |_, seg_range, part| {
        let value_base = starts[seg_range.start] as usize;
        for s in seg_range {
            let start = starts[s] as usize;
            let end = starts.get(s + 1).map_or(n, |&e| e as usize);
            let base = layer.bases[s];
            for i in start..end {
                let r = layer.residuals[i];
                part[i - value_base] = [
                    base[0] + r[0] * layer.quant_step,
                    base[1] + r[1] * layer.quant_step,
                    base[2] + r[2] * layer.quant_step,
                ];
            }
        }
    });
    out
}

// Every index is clamped to `n` before use (hostile boundaries decode
// as zeros rather than panicking).
#[allow(clippy::indexing_slicing)]
fn decode_layer_sequential(layer: &LayerEncoded) -> Vec<[i32; 3]> {
    let n = layer.residuals.len();
    let mut out = vec![[0i32; 3]; n];
    for (s, &start) in layer.starts.iter().enumerate() {
        let end = layer.starts.get(s + 1).map_or(n, |&e| e as usize).min(n);
        let Some(&base) = layer.bases.get(s) else { break };
        let lo = (start as usize).min(n);
        for (o, r) in out.iter_mut().zip(&layer.residuals).take(end).skip(lo) {
            *o = [
                base[0] + r[0] * layer.quant_step,
                base[1] + r[1] * layer.quant_step,
                base[2] + r[2] * layer.quant_step,
            ];
        }
    }
    out
}

/// Per-channel median of a non-empty slice (midpoint element of the sorted
/// channel values). Returns zeros for an empty slice. `scratch` is reused
/// across calls so the steady-state encode path never reallocates it.
// `ch` walks 0..3 into fixed [i32; 3] arrays.
#[allow(clippy::indexing_slicing)]
fn median3(seg: &[[i32; 3]], scratch: &mut Vec<i32>) -> [i32; 3] {
    if seg.is_empty() {
        return [0; 3];
    }
    let mut base = [0i32; 3];
    for ch in 0..3 {
        scratch.clear();
        scratch.extend(seg.iter().map(|v| v[ch]));
        let mid = scratch.len() / 2;
        let (_, m, _) = scratch.select_nth_unstable(mid);
        base[ch] = *m;
    }
    base
}

/// Rounds `v / q` to the nearest integer, ties toward zero (the paper's
/// Fig. 6 example quantizes a residual of −2 at step 4 to 0).
///
/// Kept as the scalar reference for [`quantize_segment`]'s batched
/// branches; the proptest pins them element-for-element to this.
#[cfg_attr(not(test), allow(dead_code))]
fn div_round(v: i32, q: i32) -> i32 {
    if q == 1 {
        return v;
    }
    let half = (q - 1) / 2;
    if v >= 0 {
        (v + half) / q
    } else {
        -((-v + half) / q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_fig6_example() {
        // Points sorted by Morton code carry attrs 50, 52 | 54 in two
        // segments; bases are the medians, residuals small.
        let values = [[50; 3], [52; 3], [54; 3]];
        // Two segments: [50, 52] and [54] (starts 0 and 2 - emulate by 2 segments over 3
        // values => starts [0, 1]; to match the paper exactly use explicit grouping).
        let enc = encode_layer(&values[..2], 1, 1);
        assert_eq!(enc.bases, vec![[52; 3]]); // median of {50,52} = upper mid
        assert_eq!(enc.residuals, vec![[-2; 3], [0; 3]]);
        let enc2 = encode_layer(&values[2..], 1, 1);
        assert_eq!(enc2.bases, vec![[54; 3]]);
        assert_eq!(enc2.residuals, vec![[0; 3]]);
    }

    #[test]
    fn lossless_round_trip() {
        let values: Vec<[i32; 3]> =
            (0..100).map(|i| [i % 17, 255 - (i % 31), (i * 7) % 256]).collect();
        let enc = encode_layer(&values, 8, 1);
        assert_eq!(decode_layer(&enc), values);
    }

    #[test]
    fn quantized_error_is_bounded() {
        let values: Vec<[i32; 3]> = (0..200).map(|i| [(i * 13) % 256, i % 256, 128]).collect();
        for shift in 1..4u32 {
            let q = 1i32 << shift;
            let enc = encode_layer(&values, 16, q);
            let dec = decode_layer(&enc);
            for (v, d) in values.iter().zip(&dec) {
                for ch in 0..3 {
                    assert!(
                        (v[ch] - d[ch]).abs() <= q / 2,
                        "err {} > {} at q={q}",
                        (v[ch] - d[ch]).abs(),
                        q / 2
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_value() {
        let enc = encode_layer(&[], 5, 2);
        assert!(decode_layer(&enc).is_empty());
        let enc = encode_layer(&[[7, 8, 9]], 5, 2);
        assert_eq!(decode_layer(&enc), vec![[7, 8, 9]]);
        // A single value is its own base: residual 0.
        assert_eq!(enc.residuals, vec![[0; 3]]);
    }

    #[test]
    fn more_segments_than_values_collapses() {
        let starts = segment_starts(3, 100);
        assert_eq!(starts, vec![0, 1, 2]);
        let starts = segment_starts(0, 10);
        assert_eq!(starts, vec![0]);
    }

    #[test]
    fn similar_values_give_tiny_residuals() {
        // The spatial-locality payoff: near-constant segments produce
        // near-zero residuals (1-byte varints).
        let values: Vec<[i32; 3]> = (0..64).map(|i| [100 + (i % 3), 50, 200]).collect();
        let enc = encode_layer(&values, 2, 1);
        assert!(enc.residuals.iter().all(|r| r.iter().all(|c| c.abs() <= 2)));
        let bytes = enc.to_bytes();
        // ~1 byte per channel per residual + bases.
        assert!(bytes.len() <= 64 * 3 + 32, "packed {} bytes", bytes.len());
    }

    #[test]
    fn serialization_round_trips() {
        let values: Vec<[i32; 3]> = (0..50).map(|i| [i, -i, i * 3]).collect();
        let enc = encode_layer(&values, 7, 2);
        let back = LayerEncoded::from_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn declared_counts_are_bounded_by_limits() {
        // A header declaring 2^40 values must be rejected before any
        // allocation; same for segments.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1); // quant_step
        varint::write_u64(&mut bytes, 1 << 40); // n
        varint::write_u64(&mut bytes, 0); // segs
        assert!(matches!(
            LayerEncoded::from_bytes(&bytes),
            Err(pcc_entropy::Error::LimitExceeded(e)) if e.what == "points"
        ));
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 0);
        varint::write_u64(&mut bytes, 1 << 40);
        assert!(matches!(
            LayerEncoded::from_bytes(&bytes),
            Err(pcc_entropy::Error::LimitExceeded(e)) if e.what == "blocks"
        ));
        // Tight limits reject an otherwise valid payload...
        let enc = encode_layer(&[[1, 2, 3]; 64], 4, 1);
        let tight = pcc_types::Limits { max_points: 8, ..pcc_types::Limits::default() };
        assert!(LayerEncoded::from_bytes_with(&enc.to_bytes(), &tight).is_err());
        // ...and generous ones decode it unchanged.
        assert_eq!(LayerEncoded::from_bytes(&enc.to_bytes()).unwrap(), enc);
    }

    #[test]
    fn truncated_payload_errors() {
        let enc = encode_layer(&[[1, 2, 3], [4, 5, 6]], 1, 1);
        let bytes = enc.to_bytes();
        assert!(LayerEncoded::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    proptest! {
        #[test]
        fn round_trip_any_sequence(
            values in prop::collection::vec((-300i32..300, -300i32..300, -300i32..300), 0..120),
            segments in 1usize..20,
            shift in 0u32..3,
        ) {
            let values: Vec<[i32; 3]> = values.into_iter().map(|(a, b, c)| [a, b, c]).collect();
            let q = 1i32 << shift;
            let enc = encode_layer(&values, segments, q);
            let dec = decode_layer(&enc);
            prop_assert_eq!(dec.len(), values.len());
            for (v, d) in values.iter().zip(&dec) {
                for ch in 0..3 {
                    prop_assert!((v[ch] - d[ch]).abs() <= q / 2);
                }
            }
            // Bytes round-trip too.
            let back = LayerEncoded::from_bytes(&enc.to_bytes()).unwrap();
            prop_assert_eq!(back, enc);
        }

        // The batched kernel's three branches (q == 1, power-of-two shift,
        // generic divide) must all agree with the scalar reference
        // `div_round` on every channel.
        #[test]
        fn quantize_segment_matches_div_round(
            values in prop::collection::vec((-5000i32..5000, -5000i32..5000, -5000i32..5000), 1..80),
            base in (-500i32..500, -500i32..500, -500i32..500),
            qi in 0usize..9,
        ) {
            let q = [1i32, 2, 4, 8, 16, 3, 5, 7, 100][qi];
            let seg: Vec<[i32; 3]> = values.into_iter().map(|(a, b, c)| [a, b, c]).collect();
            let base = [base.0, base.1, base.2];
            let mut out = vec![[0i32; 3]; seg.len()];
            quantize_segment(&seg, base, q, &mut out);
            for (v, o) in seg.iter().zip(&out) {
                for ch in 0..3 {
                    prop_assert_eq!(o[ch], div_round(v[ch] - base[ch], q));
                }
            }
        }

        // The zero-alloc entry point, the legacy wrapper, and every thread
        // count must produce the exact same layer.
        #[test]
        fn encode_into_identical_across_threads(
            values in prop::collection::vec((-300i32..300, -300i32..300, -300i32..300), 1..200),
            segments in 1usize..12,
            qi in 0usize..4,
        ) {
            let q = [1i32, 2, 4, 8][qi];
            let values: Vec<[i32; 3]> = values.into_iter().map(|(a, b, c)| [a, b, c]).collect();
            let starts = segment_starts(values.len(), segments);
            let one = NonZeroUsize::new(1).unwrap();
            let reference =
                encode_layer_with_starts_threaded(&values, starts.clone(), q, one);
            let mut bases = Vec::new();
            let mut residuals = Vec::new();
            let mut scratch = Vec::new();
            for t in [1usize, 2, 3, 8] {
                let threads = NonZeroUsize::new(t).unwrap();
                encode_layer_with_starts_into(
                    &values, &starts, q, threads, &mut bases, &mut residuals, &mut scratch,
                );
                prop_assert_eq!(&bases, &reference.bases);
                prop_assert_eq!(&residuals, &reference.residuals);
            }
        }
    }
}

//! Proposed intra-frame attribute compression (paper Fig. 4d):
//! sort → segment → Mid + Residual → quantize.

use crate::arena::AttributeScratch;
use crate::config::IntraConfig;
use crate::geometry::GeometryEncoded;
use crate::layer::{
    decode_layer_threaded, encode_layer_with_starts_into, segment_starts_into, write_layer,
    LayerEncoded,
};
use pcc_edge::{calib, Device};
use pcc_entropy::{varint, ByteModel, RangeDecoder, RangeEncoder};
use pcc_types::{Rgb, VoxelizedCloud};
use std::num::NonZeroUsize;

/// Encodes the attributes of a voxelized cloud, reusing the geometry
/// pass's Morton order (`geo.perm`) and voxel mapping at no extra cost —
/// the paper's headline reuse.
///
/// Points sharing one voxel are averaged (the decoder can only carry one
/// color per occupied voxel, as in any voxelized codec).
pub fn encode(
    cloud: &VoxelizedCloud,
    geo: &GeometryEncoded,
    config: &IntraConfig,
    device: &Device,
) -> Vec<u8> {
    let mut scratch = AttributeScratch::default();
    let mut payload = Vec::new();
    encode_in(cloud, geo, config, device, &mut scratch, &mut payload);
    payload
}

/// [`encode`] writing into arena-owned buffers — the allocation-free core
/// of the attribute pipeline. `scratch` carries the gather accumulators,
/// segment starts, and both layers' base/residual buffers across frames;
/// `payload` is cleared and refilled. The single-threaded entropy-off
/// path performs no heap allocation once the buffers have warmed
/// (asserted by `tests/alloc_steady_state.rs`).
pub fn encode_in(
    cloud: &VoxelizedCloud,
    geo: &GeometryEncoded,
    config: &IntraConfig,
    device: &Device,
    scratch: &mut AttributeScratch,
    payload: &mut Vec<u8>,
) {
    let n = cloud.len();
    let threads = pcc_parallel::resolve(config.threads.or(device.configured_host_threads()));

    // 1. Gather colors into Morton order through the geometry permutation,
    //    averaging duplicates per voxel. Chunk boundaries are aligned to
    //    voxel runs, so every thread count yields identical sums.
    gather_voxel_colors_into(
        cloud,
        geo,
        threads,
        &mut scratch.sums,
        &mut scratch.counts,
        &mut scratch.voxel_colors,
    );
    device.charge_gpu("attribute/gather", &calib::GATHER, n.max(1));

    // 2-4. Segment + two-layer base/residual coding + packing over the
    //      gathered colors (shared with the per-brick encoder).
    scratch.values.clear();
    scratch.values.extend(scratch.voxel_colors.iter().map(|c| c.to_i32()));
    encode_values_in(config, device, threads, scratch, payload);
    pcc_probe::add_bytes("intra/attribute", payload.len() as u64);
}

/// Steps 2–4 of the attribute pipeline over `scratch.values` (3-channel
/// i32 triples in sorted-voxel order): segmentation, per-segment median
/// bases, quantized residuals, the optional second layer, payload
/// packing, and the optional entropy wrap. The monolithic encoder runs
/// it once per frame over every voxel; the brick encoder runs it once
/// per brick over that brick's slice — same bytes for the same values.
pub(crate) fn encode_values_in(
    config: &IntraConfig,
    device: &Device,
    threads: NonZeroUsize,
    scratch: &mut AttributeScratch,
    payload: &mut Vec<u8>,
) {
    let q = config.quant_step();
    let m = scratch.values.len();
    let segments = config.segments_for(m);
    segment_starts_into(m, segments, &mut scratch.starts);
    encode_layer_with_starts_into(
        &scratch.values,
        &scratch.starts,
        q,
        threads,
        &mut scratch.bases,
        &mut scratch.residuals,
        &mut scratch.median,
    );
    device.charge_gpu("attribute/median", &calib::SEGMENT_MEDIAN, m.max(1));
    device.charge_gpu("attribute/delta", &calib::DELTA_QUANT, m.max(1));

    // Optional second layer: re-encode the residual stream as new
    // attributes (lossless inner layer).
    payload.clear();
    payload.push(config.two_layer as u8);
    if config.two_layer {
        encode_layer_with_starts_into(
            &scratch.residuals,
            &scratch.starts,
            1,
            threads,
            &mut scratch.bases2,
            &mut scratch.residuals2,
            &mut scratch.median,
        );
        device.charge_gpu("attribute/delta2", &calib::DELTA_QUANT, m.max(1));
        // The outer layer serializes with its residuals stripped (they
        // live on in the inner layer) — byte-identical to the old
        // `LayerEncoded { residuals: vec![], ..layer1 }.to_bytes()`.
        scratch.outer_bytes.clear();
        write_layer(&mut scratch.outer_bytes, q, &scratch.starts, &scratch.bases, &[]);
        varint::write_u64(payload, scratch.outer_bytes.len() as u64);
        payload.extend_from_slice(&scratch.outer_bytes);
        write_layer(payload, 1, &scratch.starts, &scratch.bases2, &scratch.residuals2);
    } else {
        write_layer(payload, q, &scratch.starts, &scratch.bases, &scratch.residuals);
    }
    device.charge_gpu("attribute/pack", &calib::ATTR_PACK, m.max(1));

    // Entropy coding allocates (range-coder output); the zero-alloc
    // guarantee covers the default entropy-off configuration.
    if config.entropy {
        let wrapped = entropy_wrap(payload);
        payload.clear();
        payload.extend_from_slice(&wrapped);
        device.charge_gpu("attribute/entropy", &calib::ENTROPY_GPU, payload.len());
    }
}

/// Decodes an attribute payload back to per-voxel colors (Morton order,
/// one per unique voxel) under [`pcc_types::Limits::default`].
///
/// # Errors
///
/// Propagates varint/layer decoding errors on malformed input.
pub fn decode(
    payload: &[u8],
    config: &IntraConfig,
    device: &Device,
) -> Result<Vec<Rgb>, pcc_entropy::Error> {
    decode_with(payload, config, device, &pcc_types::Limits::default())
}

/// Decodes an attribute payload under explicit resource
/// [`pcc_types::Limits`]: the entropy wrapper's declared length is
/// bounded by `max_alloc_bytes` and the layer headers by
/// `max_points`/`max_blocks`.
///
/// # Errors
///
/// Propagates varint/layer decoding errors on malformed input and
/// returns [`pcc_entropy::Error::LimitExceeded`] when a limit is hit.
pub fn decode_with(
    payload: &[u8],
    config: &IntraConfig,
    device: &Device,
    limits: &pcc_types::Limits,
) -> Result<Vec<Rgb>, pcc_entropy::Error> {
    let threads = pcc_parallel::resolve(config.threads.or(device.configured_host_threads()));
    let colors = decode_payload(payload, config, threads, limits)?;
    device.charge_gpu("attribute_decode", &calib::ATTR_DECODE, colors.len().max(1));
    Ok(colors)
}

/// The device-free core of [`decode_with`]: unwrap, layer decode, and
/// clamp at an explicit thread count, charging nothing. The brick
/// decoder runs this once per brick — possibly from a worker thread —
/// and charges the device model once for the merged frame.
pub(crate) fn decode_payload(
    payload: &[u8],
    config: &IntraConfig,
    threads: NonZeroUsize,
    limits: &pcc_types::Limits,
) -> Result<Vec<Rgb>, pcc_entropy::Error> {
    let owned;
    let mut input = payload;
    if config.entropy {
        owned = entropy_unwrap(payload, limits)?;
        input = &owned;
    }
    let (&two_layer, mut rest) = input.split_first().ok_or(pcc_entropy::Error::UnexpectedEnd)?;
    let values = if two_layer != 0 {
        let outer_len = varint::read_u64(&mut rest)? as usize;
        let (outer_bytes, layer2_bytes) =
            rest.split_at_checked(outer_len).ok_or(pcc_entropy::Error::UnexpectedEnd)?;
        let mut outer = LayerEncoded::from_bytes_with(outer_bytes, limits)?;
        let layer2 = LayerEncoded::from_bytes_with(layer2_bytes, limits)?;
        outer.residuals = decode_layer_threaded(&layer2, threads);
        decode_layer_threaded(&outer, threads)
    } else {
        decode_layer_threaded(&LayerEncoded::from_bytes_with(rest, limits)?, threads)
    };
    Ok(values.into_iter().map(Rgb::from_i32_clamped).collect())
}

/// Gathers per-voxel mean colors in Morton order.
pub fn gather_voxel_colors(cloud: &VoxelizedCloud, geo: &GeometryEncoded) -> Vec<Rgb> {
    gather_voxel_colors_with(cloud, geo, pcc_parallel::resolve(None))
}

/// [`gather_voxel_colors`] with an explicit host thread count.
///
/// `geo.point_to_voxel` is non-decreasing over sorted rank, so chunks
/// aligned to voxel boundaries accumulate into disjoint contiguous slices
/// of the per-voxel sums — no atomics, and identical sums (hence bytes)
/// at every thread count.
pub fn gather_voxel_colors_with(
    cloud: &VoxelizedCloud,
    geo: &GeometryEncoded,
    threads: NonZeroUsize,
) -> Vec<Rgb> {
    let mut sums = Vec::new();
    let mut counts = Vec::new();
    let mut out = Vec::new();
    gather_voxel_colors_into(cloud, geo, threads, &mut sums, &mut counts, &mut out);
    out
}

/// [`gather_voxel_colors_with`] writing into caller-owned buffers.
/// `sums`/`counts` are the per-voxel accumulators, `out` the averaged
/// colors; all three are cleared and refilled, so their capacity persists
/// across frames and the single-threaded path is allocation-free once
/// warm.
// Encoder side: ranks/perm/point_to_voxel come from the geometry pass
// over the same cloud, so every index is in range by construction.
#[allow(clippy::indexing_slicing)]
pub fn gather_voxel_colors_into(
    cloud: &VoxelizedCloud,
    geo: &GeometryEncoded,
    threads: NonZeroUsize,
    sums: &mut Vec<[u32; 3]>,
    counts: &mut Vec<u32>,
    out: &mut Vec<Rgb>,
) {
    let _sp = pcc_probe::span("intra/gather");
    let m = geo.unique_voxels;
    let n = geo.perm.len();
    sums.clear();
    sums.resize(m, [0u32; 3]);
    counts.clear();
    counts.resize(m, 0u32);
    let p2v = &geo.point_to_voxel;
    let colors = cloud.colors();

    let accumulate = |rank_range: std::ops::Range<usize>,
                      sums_part: &mut [[u32; 3]],
                      counts_part: &mut [u32]| {
        let voxel_base = p2v.get(rank_range.start).map_or(0, |&v| v as usize);
        for rank in rank_range {
            let v = p2v[rank] as usize - voxel_base;
            let c = colors[geo.perm[rank] as usize];
            sums_part[v][0] += c.r as u32;
            sums_part[v][1] += c.g as u32;
            sums_part[v][2] += c.b as u32;
            counts_part[v] += 1;
        }
    };

    let fan = pcc_parallel::effective_threads(threads, n);
    if fan <= 1 {
        accumulate(0..n, sums, counts);
    } else {
        let ranges = pcc_parallel::aligned_chunk_ranges(n, fan, |i| p2v[i] != p2v[i - 1]);
        let voxel_cuts: Vec<usize> =
            ranges[1..].iter().map(|r| p2v[r.start] as usize).collect();
        let sums_parts = pcc_parallel::split_at_many(sums, &voxel_cuts);
        let counts_parts = pcc_parallel::split_at_many(counts, &voxel_cuts);
        let ctxs: Vec<_> = ranges.into_iter().zip(counts_parts).collect();
        pcc_parallel::scope_run(sums_parts, ctxs, |_, (rank_range, counts_part), sums_part| {
            accumulate(rank_range, sums_part, counts_part);
        });
    }

    let average = |s: &[u32; 3], c: u32| {
        let k = c.max(1);
        Rgb::new(
            ((s[0] + k / 2) / k) as u8,
            ((s[1] + k / 2) / k) as u8,
            ((s[2] + k / 2) / k) as u8,
        )
    };
    out.clear();
    let avg_fan = pcc_parallel::effective_threads(threads, m);
    if avg_fan <= 1 {
        // Plain sequential extend: the parallel plumbing below allocates
        // its range list even for one chunk, which would break the
        // zero-alloc steady state.
        out.extend(sums.iter().zip(counts.iter()).map(|(s, &c)| average(s, c)));
    } else {
        out.resize(m, Rgb::BLACK);
        let voxel_ranges = pcc_parallel::chunk_ranges(m, avg_fan);
        pcc_parallel::par_fill(out, &voxel_ranges, |_, range, part| {
            for (slot, v) in part.iter_mut().zip(range) {
                *slot = average(&sums[v], counts[v]);
            }
        });
    }
}

fn entropy_wrap(payload: &[u8]) -> Vec<u8> {
    let mut model = ByteModel::new();
    let mut enc = RangeEncoder::new();
    for &b in payload {
        enc.encode_byte(&mut model, b);
    }
    let coded = enc.finish();
    let mut out = Vec::with_capacity(coded.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&coded);
    out
}

fn entropy_unwrap(
    stream: &[u8],
    limits: &pcc_types::Limits,
) -> Result<Vec<u8>, pcc_entropy::Error> {
    // The u32 length prefix is attacker-controlled: bound it before the
    // allocation it drives.
    let (len_bytes, coded) =
        stream.split_first_chunk::<4>().ok_or(pcc_entropy::Error::UnexpectedEnd)?;
    let len = u32::from_le_bytes(*len_bytes) as usize;
    limits.check_alloc(len as u64)?;
    let mut model = ByteModel::new();
    let mut dec = RangeDecoder::new(coded);
    Ok((0..len).map(|_| dec.decode_byte(&mut model)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry;
    use pcc_edge::PowerMode;
    use pcc_types::{Point3, PointCloud};
    use proptest::prelude::*;

    fn device() -> Device {
        Device::jetson_agx_xavier(PowerMode::W15)
    }

    fn encode_decode(cloud: &PointCloud, config: &IntraConfig, depth: u8) -> (Vec<Rgb>, Vec<Rgb>) {
        let vox = VoxelizedCloud::from_cloud(cloud, depth);
        let d = device();
        let geo = geometry::encode(&vox, false, &d);
        let payload = encode(&vox, &geo, config, &d);
        let decoded = decode(&payload, config, &d).unwrap();
        let original = gather_voxel_colors(&vox, &geo);
        (original, decoded)
    }

    fn gradient_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                (
                    Point3::new(i as f32, (i / 8) as f32, 0.0),
                    Rgb::new((i % 256) as u8, 128, (255 - i % 256) as u8),
                )
            })
            .collect()
    }

    #[test]
    fn lossless_config_round_trips_exactly() {
        let cloud = gradient_cloud(300);
        let cfg = IntraConfig::lossless();
        let (original, decoded) = encode_decode(&cloud, &cfg, 9);
        assert_eq!(original, decoded);
    }

    #[test]
    fn quantized_error_bounded_by_half_step() {
        let cloud = gradient_cloud(300);
        let cfg = IntraConfig::paper();
        let (original, decoded) = encode_decode(&cloud, &cfg, 9);
        let half = cfg.quant_step() / 2;
        for (o, d) in original.iter().zip(&decoded) {
            for (oc, dc) in o.to_i32().iter().zip(d.to_i32()) {
                assert!((oc - dc).abs() <= half, "err {} > {half}", (oc - dc).abs());
            }
        }
    }

    #[test]
    fn single_layer_and_two_layer_agree_on_values() {
        let cloud = gradient_cloud(200);
        let one = IntraConfig { two_layer: false, ..IntraConfig::lossless() };
        let two = IntraConfig::lossless();
        let (_, d1) = encode_decode(&cloud, &one, 9);
        let (_, d2) = encode_decode(&cloud, &two, 9);
        assert_eq!(d1, d2);
    }

    #[test]
    fn entropy_config_round_trips() {
        let cloud = gradient_cloud(200);
        let cfg = IntraConfig { entropy: true, ..IntraConfig::lossless() };
        let (original, decoded) = encode_decode(&cloud, &cfg, 9);
        assert_eq!(original, decoded);
    }

    #[test]
    fn duplicate_points_average_per_voxel() {
        let cloud: PointCloud = [
            (Point3::ORIGIN, Rgb::gray(100)),
            (Point3::ORIGIN, Rgb::gray(104)),
            (Point3::new(40.0, 0.0, 0.0), Rgb::gray(200)),
        ]
        .into_iter()
        .collect();
        let cfg = IntraConfig::lossless();
        let (original, decoded) = encode_decode(&cloud, &cfg, 4);
        assert_eq!(original.len(), 2);
        assert_eq!(decoded[0], Rgb::gray(102));
    }

    #[test]
    fn empty_cloud_round_trips() {
        let cfg = IntraConfig::paper();
        let vox = VoxelizedCloud::from_cloud(&PointCloud::new(), 6);
        let d = device();
        let geo = geometry::encode(&vox, false, &d);
        let payload = encode(&vox, &geo, &cfg, &d);
        let decoded = decode(&payload, &cfg, &d).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn smooth_content_compresses_well() {
        // Smooth colors => residuals near zero => ~1 byte/channel.
        let cloud: PointCloud = (0..4096)
            .map(|i| {
                let x = (i % 16) as f32;
                let y = ((i / 16) % 16) as f32;
                let z = (i / 256) as f32;
                (Point3::new(x, y, z), Rgb::new((x * 4.0) as u8, (y * 4.0) as u8, (z * 4.0) as u8))
            })
            .collect();
        let cfg = IntraConfig::paper();
        let vox = VoxelizedCloud::from_cloud(&cloud, 4);
        let d = device();
        let geo = geometry::encode(&vox, false, &d);
        let payload = encode(&vox, &geo, &cfg, &d);
        let bytes_per_voxel = payload.len() as f64 / geo.unique_voxels as f64;
        assert!(bytes_per_voxel < 3.5, "{bytes_per_voxel} bytes/voxel");
    }

    #[test]
    fn malformed_payload_errors() {
        let cfg = IntraConfig::paper();
        let d = device();
        assert!(decode(&[], &cfg, &d).is_err());
        assert!(decode(&[1, 200], &cfg, &d).is_err());
    }

    proptest! {
        #[test]
        fn decoded_colors_within_quant_bound(
            pts in prop::collection::vec((0u32..32, 0u32..32, 0u32..32, any::<u8>()), 1..100),
            shift in 0u8..3,
        ) {
            let cloud: PointCloud = pts
                .iter()
                .map(|&(x, y, z, c)| {
                    (Point3::new(x as f32, y as f32, z as f32), Rgb::new(c, c.wrapping_add(40), 255 - c))
                })
                .collect();
            let cfg = IntraConfig { quant_shift: shift, ..IntraConfig::paper() };
            let (original, decoded) = encode_decode(&cloud, &cfg, 5);
            prop_assert_eq!(original.len(), decoded.len());
            let half = cfg.quant_step() / 2;
            for (o, d) in original.iter().zip(&decoded) {
                for (oc, dc) in o.to_i32().iter().zip(d.to_i32()) {
                    prop_assert!((oc - dc).abs() <= half);
                }
            }
        }
    }
}

//! Intra-codec configuration.

use std::num::NonZeroUsize;

/// Configuration of the intra-frame codec.
///
/// Defaults follow the paper's evaluated operating point (Sec. VI-B):
/// 30 000 segments per frame, a 2-layer residual encoder, and entropy
/// coding *disabled* (the paper discards it for a ≈2× geometry-stage
/// speedup at ≈0.5× larger streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntraConfig {
    /// Target number of attribute segments per frame.
    pub segments: usize,
    /// Residual quantization shift: residuals are quantized with step
    /// `1 << quant_shift` (0 = lossless residuals).
    pub quant_shift: u8,
    /// Re-encode the residual stream through a second base+delta layer.
    pub two_layer: bool,
    /// Entropy-code the packed geometry and attribute payloads.
    pub entropy: bool,
    /// Host threads for the parallel hot path (`None` = `PCC_THREADS`
    /// env var, then [`std::thread::available_parallelism`]). Encoded
    /// streams are byte-identical at every thread count.
    pub threads: Option<NonZeroUsize>,
}

impl IntraConfig {
    /// The paper's evaluated configuration.
    pub fn paper() -> Self {
        IntraConfig {
            segments: 30_000,
            quant_shift: 2,
            two_layer: true,
            entropy: false,
            threads: None,
        }
    }

    /// This configuration with an explicit host thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        IntraConfig { threads: NonZeroUsize::new(threads), ..self }
    }

    /// The thread count after applying the resolution chain (explicit
    /// config → `PCC_THREADS` → available parallelism).
    pub fn resolved_threads(&self) -> NonZeroUsize {
        pcc_parallel::resolve(self.threads)
    }

    /// A lossless-residual configuration (for tests and ablations).
    pub fn lossless() -> Self {
        IntraConfig { quant_shift: 0, ..IntraConfig::paper() }
    }

    /// Segment count scaled to a frame of `points` points, preserving the
    /// configured full-scale density (`segments` per 10⁶ points; the
    /// paper's 30 000 ⇒ ~33 points per segment).
    pub fn segments_for(&self, points: usize) -> usize {
        let per_segment = 1_000_000.0 / self.segments.max(1) as f64;
        let scaled = (points as f64 / per_segment).round() as usize;
        scaled.clamp(1, self.segments.max(1))
    }

    /// The residual quantization step (`1 << quant_shift`).
    pub fn quant_step(&self) -> i32 {
        1 << self.quant_shift
    }
}

impl Default for IntraConfig {
    fn default() -> Self {
        IntraConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = IntraConfig::default();
        assert_eq!(c.segments, 30_000);
        assert_eq!(c.quant_step(), 4);
        assert!(c.two_layer);
        assert!(!c.entropy);
    }

    #[test]
    fn segment_scaling_preserves_density() {
        let c = IntraConfig::default();
        assert_eq!(c.segments_for(1_000_000), 30_000);
        assert_eq!(c.segments_for(100_000), 3_000);
        assert_eq!(c.segments_for(10), 1); // tiny frames get one segment
        // Never exceeds the configured cap.
        assert_eq!(c.segments_for(10_000_000), 30_000);
    }

    #[test]
    fn lossless_config_has_unit_step() {
        assert_eq!(IntraConfig::lossless().quant_step(), 1);
    }
}

//! Intra-codec configuration.

use std::num::NonZeroUsize;

/// Configuration of the intra-frame codec.
///
/// Defaults follow the paper's evaluated operating point (Sec. VI-B):
/// 30 000 segments per frame, a 2-layer residual encoder, and entropy
/// coding *disabled* (the paper discards it for a ≈2× geometry-stage
/// speedup at ≈0.5× larger streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntraConfig {
    /// Target number of attribute segments per frame.
    pub segments: usize,
    /// Residual quantization shift: residuals are quantized with step
    /// `1 << quant_shift` (0 = lossless residuals).
    pub quant_shift: u8,
    /// Re-encode the residual stream through a second base+delta layer.
    pub two_layer: bool,
    /// Entropy-code the packed geometry and attribute payloads.
    pub entropy: bool,
    /// Octree depth at which the frame is cut into **bricks** — fixed-depth
    /// subtree partitions, each carrying its own geometry + attribute
    /// payload behind a CRC-guarded per-frame index, so bricks decode in
    /// parallel, a viewport decodes only the bricks it sees, and a corrupt
    /// brick loses one subtree instead of the frame.
    ///
    /// `0` (the default) selects the original monolithic layout — the
    /// golden-pinned compatibility mode. Non-zero values are clamped to
    /// `1..=depth-1` at encode time; grids too shallow to split
    /// (`depth < 2`) fall back to the monolithic layout. With entropy
    /// coding off the decoder auto-detects the layout per frame, so a
    /// `brick_depth: 0` receiver still decodes brick frames; with entropy
    /// on the flag is part of the decode contract like `entropy` itself.
    pub brick_depth: u8,
    /// Host threads for the parallel hot path (`None` = `PCC_THREADS`
    /// env var, then [`std::thread::available_parallelism`]). Encoded
    /// streams are byte-identical at every thread count.
    pub threads: Option<NonZeroUsize>,
}

impl IntraConfig {
    /// The paper's evaluated configuration.
    pub fn paper() -> Self {
        IntraConfig {
            segments: 30_000,
            quant_shift: 2,
            two_layer: true,
            entropy: false,
            brick_depth: 0,
            threads: None,
        }
    }

    /// This configuration with an explicit host thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        IntraConfig { threads: NonZeroUsize::new(threads), ..self }
    }

    /// This configuration with the frame cut into bricks at `brick_depth`
    /// (see [`IntraConfig::brick_depth`]; `0` restores the monolithic
    /// layout).
    pub fn with_bricks(self, brick_depth: u8) -> Self {
        IntraConfig { brick_depth, ..self }
    }

    /// The brick cut depth the encoder actually uses for a grid of
    /// `depth`: the configured value clamped to a splittable range, or
    /// `None` when the frame stays monolithic (brick coding off, or the
    /// grid too shallow to split).
    pub fn effective_brick_depth(&self, depth: u8) -> Option<u8> {
        if self.brick_depth == 0 || depth < 2 {
            return None;
        }
        Some(self.brick_depth.min(depth - 1))
    }

    /// The thread count after applying the resolution chain (explicit
    /// config → `PCC_THREADS` → available parallelism).
    pub fn resolved_threads(&self) -> NonZeroUsize {
        pcc_parallel::resolve(self.threads)
    }

    /// A lossless-residual configuration (for tests and ablations).
    pub fn lossless() -> Self {
        IntraConfig { quant_shift: 0, ..IntraConfig::paper() }
    }

    /// Segment count scaled to a frame of `points` points, preserving the
    /// configured full-scale density (`segments` per 10⁶ points; the
    /// paper's 30 000 ⇒ ~33 points per segment).
    pub fn segments_for(&self, points: usize) -> usize {
        let per_segment = 1_000_000.0 / self.segments.max(1) as f64;
        let scaled = (points as f64 / per_segment).round() as usize;
        scaled.clamp(1, self.segments.max(1))
    }

    /// The residual quantization step (`1 << quant_shift`).
    pub fn quant_step(&self) -> i32 {
        1 << self.quant_shift
    }
}

impl Default for IntraConfig {
    fn default() -> Self {
        IntraConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = IntraConfig::default();
        assert_eq!(c.segments, 30_000);
        assert_eq!(c.quant_step(), 4);
        assert!(c.two_layer);
        assert!(!c.entropy);
    }

    #[test]
    fn segment_scaling_preserves_density() {
        let c = IntraConfig::default();
        assert_eq!(c.segments_for(1_000_000), 30_000);
        assert_eq!(c.segments_for(100_000), 3_000);
        assert_eq!(c.segments_for(10), 1); // tiny frames get one segment
        // Never exceeds the configured cap.
        assert_eq!(c.segments_for(10_000_000), 30_000);
    }

    #[test]
    fn lossless_config_has_unit_step() {
        assert_eq!(IntraConfig::lossless().quant_step(), 1);
    }

    #[test]
    fn brick_depth_clamps_to_splittable_grids() {
        let c = IntraConfig::default();
        assert_eq!(c.brick_depth, 0, "monolithic stays the default");
        assert_eq!(c.effective_brick_depth(7), None);
        let b = c.with_bricks(3);
        assert_eq!(b.effective_brick_depth(7), Some(3));
        assert_eq!(b.effective_brick_depth(3), Some(2), "cut must leave a subtree level");
        assert_eq!(b.effective_brick_depth(2), Some(1));
        assert_eq!(b.effective_brick_depth(1), None, "a 2^3 grid cannot split");
        assert_eq!(b.with_bricks(0).effective_brick_depth(7), None);
    }
}

//! # pcc-probe — measured per-stage observability
//!
//! The `pcc-edge` device model predicts where a frame's time should go;
//! this crate measures where it actually goes. Pipeline stages wrap their
//! hot sections in [`span`] guards; each guard records a wall-clock
//! interval into a *thread-local* buffer (the parallel executor's scoped
//! workers never contend on a shared sink), and buffers drain into a
//! process-wide sink when a thread exits or when [`take_report`] collects
//! a [`Report`]. Byte-volume and item-count gauges ([`add_bytes`],
//! [`add_count`]) ride the same buffers.
//!
//! ## Cost model
//!
//! * Built **without** the `capture` feature: every function here is an
//!   inlined empty body and [`Span`] is a zero-sized type without a
//!   `Drop` impl — the instrumentation compiles to nothing.
//! * Built **with** `capture` (the workspace default) but not enabled at
//!   runtime: one relaxed atomic load per probe call, no allocation.
//! * Enabled (environment variable `PCC_PROBE=1`, or [`set_enabled`]):
//!   two `Instant` reads plus an amortized thread-local `Vec` push per
//!   span.
//!
//! Recording never feeds back into encoded output: bitstreams are
//! byte-identical with probes on and off (asserted by
//! `tests/determinism.rs` in the workspace root).
//!
//! ```
//! pcc_probe::set_enabled(true);
//! {
//!     let mut sp = pcc_probe::span("demo/stage");
//!     sp.add_bytes(128);
//! }
//! let report = pcc_probe::take_report();
//! # #[cfg(feature = "capture")]
//! assert_eq!(report.stage("demo/stage").map(|s| s.bytes), Some(128));
//! pcc_probe::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Environment variable consulted (once) for the runtime switch:
/// `1`/`true`/`on`/`yes` enable recording.
pub const PROBE_ENV: &str = "PCC_PROBE";

/// One recorded span: a named wall-clock interval on one thread.
///
/// Timestamps are nanoseconds relative to the process-wide probe epoch
/// (the first instant the recording machinery was touched), so spans
/// from different threads share one timebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage label, e.g. `"morton/radix_sort"` — slash-separated
    /// prefixes group related stages, mirroring `pcc-edge` timelines.
    pub stage: &'static str,
    /// Start time in nanoseconds since the probe epoch.
    pub start_ns: u64,
    /// Measured duration in nanoseconds (at least 1).
    pub dur_ns: u64,
    /// Recording thread's lane id (0, 1, 2, … in first-record order).
    pub lane: u32,
    /// Bytes attached via [`Span::add_bytes`].
    pub bytes: u64,
}

/// One gauge event: bytes and/or a count attributed to a stage without
/// timing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GaugeRecord {
    stage: &'static str,
    bytes: u64,
    count: u64,
}

/// Aggregated statistics for one stage across a [`Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// The stage label.
    pub stage: &'static str,
    /// Number of spans recorded for the stage.
    pub calls: usize,
    /// Sum of span durations (ns).
    pub total_ns: u64,
    /// Shortest span (ns); 0 when no spans (gauge-only stage).
    pub min_ns: u64,
    /// Median span duration (ns; lower midpoint).
    pub p50_ns: u64,
    /// Longest span (ns).
    pub max_ns: u64,
    /// Bytes attached to the stage (span bytes + gauge bytes).
    pub bytes: u64,
    /// Item count attached via [`add_count`].
    pub count: u64,
}

/// A drained collection of spans and gauges with aggregation helpers.
#[derive(Debug, Clone, Default)]
pub struct Report {
    spans: Vec<SpanRecord>,
    gauges: Vec<GaugeRecord>,
}

impl Report {
    /// All spans, ordered by start time (ties by lane).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.gauges.is_empty()
    }

    /// Per-stage aggregates, sorted by stage name.
    pub fn by_stage(&self) -> Vec<StageStats> {
        use std::collections::BTreeMap;
        let mut durs: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        let mut extra: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            durs.entry(s.stage).or_default().push(s.dur_ns);
            extra.entry(s.stage).or_default().0 += s.bytes;
        }
        for g in &self.gauges {
            durs.entry(g.stage).or_default();
            let e = extra.entry(g.stage).or_default();
            e.0 += g.bytes;
            e.1 += g.count;
        }
        durs.into_iter()
            .map(|(stage, mut d)| {
                d.sort_unstable();
                let (bytes, count) = extra.get(stage).copied().unwrap_or((0, 0));
                StageStats {
                    stage,
                    calls: d.len(),
                    total_ns: d.iter().sum(),
                    min_ns: d.first().copied().unwrap_or(0),
                    p50_ns: if d.is_empty() { 0 } else { d[(d.len() - 1) / 2] },
                    max_ns: d.last().copied().unwrap_or(0),
                    bytes,
                    count,
                }
            })
            .collect()
    }

    /// Aggregate for one stage, if anything was recorded under it.
    pub fn stage(&self, name: &str) -> Option<StageStats> {
        self.by_stage().into_iter().find(|s| s.stage == name)
    }

    /// Total span nanoseconds under `prefix` (exact match or
    /// `prefix/...`), mirroring `Timeline::stage_ms` matching.
    pub fn stage_total_ns(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| {
                s.stage == prefix
                    || (s.stage.len() > prefix.len()
                        && s.stage.starts_with(prefix)
                        && s.stage.as_bytes()[prefix.len()] == b'/')
            })
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Renders the per-stage aggregation as an aligned text table
    /// (durations in milliseconds).
    pub fn table(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "stage", "calls", "min ms", "p50 ms", "max ms", "total ms", "bytes"
        );
        for s in self.by_stage() {
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12}",
                s.stage,
                s.calls,
                ms(s.min_ns),
                ms(s.p50_ns),
                ms(s.max_ns),
                ms(s.total_ns),
                if s.bytes == 0 { "-".to_string() } else { s.bytes.to_string() },
            );
        }
        out
    }

    /// Folds another report's events into this one (re-sorting spans).
    pub fn merge(&mut self, other: Report) {
        self.spans.extend(other.spans);
        self.gauges.extend(other.gauges);
        self.spans.sort_by_key(|s| (s.start_ns, s.lane));
    }
}

#[cfg(feature = "capture")]
mod imp {
    use super::{GaugeRecord, Report, SpanRecord};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// 0 = read env on first use, 1 = off, 2 = on.
    static STATE: AtomicU8 = AtomicU8::new(0);
    static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static SINK: Mutex<(Vec<SpanRecord>, Vec<GaugeRecord>)> =
        Mutex::new((Vec::new(), Vec::new()));

    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            1 => false,
            2 => true,
            _ => {
                let on = std::env::var(super::PROBE_ENV).is_ok_and(|v| {
                    matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes")
                });
                STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
                on
            }
        }
    }

    pub fn set_enabled(on: bool) {
        STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }

    pub fn epoch_ns() -> u64 {
        let epoch = *EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }

    /// Per-thread event buffer. The `Drop` flush drains a thread's events
    /// into the sink when its TLS is torn down. Note `thread::scope`
    /// unblocks when a worker's *closure* returns — TLS destructors run
    /// slightly later as the OS thread exits — so scoped workers that
    /// record spans call `flush_thread()` at the end of their closure to
    /// publish deterministically; the `Drop` flush is the safety net for
    /// plain spawned threads.
    struct LocalBuf {
        lane: u32,
        spans: Vec<SpanRecord>,
        gauges: Vec<GaugeRecord>,
    }

    impl Drop for LocalBuf {
        fn drop(&mut self) {
            if self.spans.is_empty() && self.gauges.is_empty() {
                return;
            }
            if let Ok(mut sink) = SINK.lock() {
                sink.0.append(&mut self.spans);
                sink.1.append(&mut self.gauges);
            }
        }
    }

    thread_local! {
        static BUF: RefCell<LocalBuf> = RefCell::new(LocalBuf {
            lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
            spans: Vec::new(),
            gauges: Vec::new(),
        });
    }

    pub fn push_span(stage: &'static str, start_ns: u64, dur_ns: u64, bytes: u64) {
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            let lane = b.lane;
            b.spans.push(SpanRecord { stage, start_ns, dur_ns: dur_ns.max(1), lane, bytes });
        });
    }

    pub fn push_gauge(stage: &'static str, bytes: u64, count: u64) {
        let _ = BUF.try_with(|b| b.borrow_mut().gauges.push(GaugeRecord { stage, bytes, count }));
    }

    pub fn flush_thread() {
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            if b.spans.is_empty() && b.gauges.is_empty() {
                return;
            }
            if let Ok(mut sink) = SINK.lock() {
                let spans = std::mem::take(&mut b.spans);
                let gauges = std::mem::take(&mut b.gauges);
                sink.0.extend(spans);
                sink.1.extend(gauges);
            }
        });
    }

    pub fn take_report() -> Report {
        flush_thread();
        let (mut spans, gauges) = match SINK.lock() {
            Ok(mut sink) => (std::mem::take(&mut sink.0), std::mem::take(&mut sink.1)),
            Err(_) => (Vec::new(), Vec::new()),
        };
        spans.sort_by_key(|s| (s.start_ns, s.lane));
        Report { spans, gauges }
    }

    pub fn discard_thread() {
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            b.spans.clear();
            b.gauges.clear();
        });
    }
}

/// A live stage-scoped span guard: records a [`SpanRecord`] when dropped
/// (or explicitly via [`stop`](Span::stop)).
///
/// Without the `capture` feature this is a zero-sized type with no
/// `Drop` impl; with capture but recording disabled it holds `None` and
/// drops for free.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    #[cfg(feature = "capture")]
    live: Option<LiveSpan>,
}

#[cfg(feature = "capture")]
#[derive(Debug)]
struct LiveSpan {
    stage: &'static str,
    start: std::time::Instant,
    start_ns: u64,
    bytes: u64,
}

/// Opens a span for `stage`; the returned guard records on drop.
#[inline]
pub fn span(stage: &'static str) -> Span {
    #[cfg(feature = "capture")]
    {
        let live = imp::enabled().then(|| LiveSpan {
            stage,
            start_ns: imp::epoch_ns(),
            start: std::time::Instant::now(),
            bytes: 0,
        });
        Span { live }
    }
    #[cfg(not(feature = "capture"))]
    {
        let _ = stage;
        Span {}
    }
}

impl Span {
    /// Attaches `n` bytes to this span (a byte-volume gauge riding the
    /// span record; summed if called repeatedly).
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        #[cfg(feature = "capture")]
        if let Some(live) = &mut self.live {
            live.bytes += n;
        }
        #[cfg(not(feature = "capture"))]
        let _ = n;
    }

    /// Ends the span now, returning the measured duration in nanoseconds
    /// (0 when recording is disabled or compiled out).
    #[inline]
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    #[cfg(feature = "capture")]
    fn finish(&mut self) -> u64 {
        match self.live.take() {
            Some(live) => {
                let dur_ns = (live.start.elapsed().as_nanos() as u64).max(1);
                imp::push_span(live.stage, live.start_ns, dur_ns, live.bytes);
                dur_ns
            }
            None => 0,
        }
    }

    #[cfg(not(feature = "capture"))]
    #[inline(always)]
    fn finish(&mut self) -> u64 {
        0
    }
}

#[cfg(feature = "capture")]
impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Records a byte-volume gauge against `stage` without timing anything.
#[inline]
pub fn add_bytes(stage: &'static str, bytes: u64) {
    #[cfg(feature = "capture")]
    if imp::enabled() {
        imp::push_gauge(stage, bytes, 0);
    }
    #[cfg(not(feature = "capture"))]
    {
        let _ = (stage, bytes);
    }
}

/// Records an item-count gauge against `stage` without timing anything.
#[inline]
pub fn add_count(stage: &'static str, n: u64) {
    #[cfg(feature = "capture")]
    if imp::enabled() {
        imp::push_gauge(stage, 0, n);
    }
    #[cfg(not(feature = "capture"))]
    {
        let _ = (stage, n);
    }
}

/// Whether recording is currently on.
///
/// The first call reads [`PROBE_ENV`]; [`set_enabled`] overrides it.
/// Always `false` without the `capture` feature.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "capture")]
    {
        imp::enabled()
    }
    #[cfg(not(feature = "capture"))]
    {
        false
    }
}

/// Turns recording on or off for the whole process (tests and examples
/// use this instead of mutating the environment). No-op without the
/// `capture` feature.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "capture")]
    imp::set_enabled(on);
    #[cfg(not(feature = "capture"))]
    let _ = on;
}

/// Drains the current thread's buffer into the process sink. Threads
/// flush automatically when they exit; long-lived threads call this (or
/// [`take_report`], which includes it) before a collection point.
pub fn flush_thread() {
    #[cfg(feature = "capture")]
    imp::flush_thread();
}

/// Discards the current thread's buffered events *without* publishing
/// them, keeping the buffers' capacity. Steady-state measurement loops
/// (the workspace's `tests/alloc_steady_state.rs`) call this between
/// frames so recording with probes enabled stays allocation-free: a
/// `clear()` retains capacity where draining via [`take_report`] would
/// `mem::take` the buffers and force a fresh allocation on the next
/// span. No-op without the `capture` feature.
pub fn discard_thread() {
    #[cfg(feature = "capture")]
    imp::discard_thread();
}

/// Flushes the calling thread, then drains the process sink into a
/// [`Report`] (leaving the sink empty). Spans buffered on *other live*
/// threads that have neither exited nor flushed are not included.
///
/// Always returns an empty report without the `capture` feature.
pub fn take_report() -> Report {
    #[cfg(feature = "capture")]
    {
        imp::take_report()
    }
    #[cfg(not(feature = "capture"))]
    {
        Report::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Probe state is process-global, so every test here runs under one
    // lock to keep enable/drain cycles from interleaving.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[cfg(feature = "capture")]
    #[test]
    fn spans_record_and_aggregate() {
        let _l = locked();
        set_enabled(true);
        let _ = take_report(); // drain anything stale
        {
            let mut sp = span("t/alpha");
            sp.add_bytes(10);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _sp = span("t/alpha");
        }
        {
            let _sp = span("t/beta");
        }
        add_bytes("t/beta", 99);
        add_count("t/beta", 7);
        let report = take_report();
        set_enabled(false);

        assert_eq!(report.spans().len(), 3);
        let alpha = report.stage("t/alpha").expect("alpha recorded");
        assert_eq!(alpha.calls, 2);
        assert_eq!(alpha.bytes, 10);
        assert!(alpha.max_ns >= 1_000_000, "slept 1ms, got {}ns", alpha.max_ns);
        assert!(alpha.min_ns <= alpha.p50_ns && alpha.p50_ns <= alpha.max_ns);
        let beta = report.stage("t/beta").expect("beta recorded");
        assert_eq!((beta.calls, beta.bytes, beta.count), (1, 99, 7));
        assert_eq!(report.stage_total_ns("t"), alpha.total_ns + beta.total_ns);
        // "t" must not prefix-match a stage named "t2".
        assert_eq!(report.stage_total_ns("t/al"), 0);

        let table = report.table();
        assert!(table.contains("t/alpha") && table.contains("t/beta"), "{table}");
    }

    #[cfg(feature = "capture")]
    #[test]
    fn disabled_records_nothing_and_stop_returns_zero() {
        let _l = locked();
        set_enabled(false);
        let _ = take_report();
        let mut sp = span("t/off");
        sp.add_bytes(5);
        assert_eq!(sp.stop(), 0);
        add_bytes("t/off", 1);
        add_count("t/off", 1);
        assert!(take_report().is_empty());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn worker_thread_buffers_flush_on_exit() {
        let _l = locked();
        set_enabled(true);
        let _ = take_report();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    {
                        let _sp = span("t/worker");
                    }
                    // Scopes unblock when the closure returns, before TLS
                    // destructors — publish deterministically.
                    flush_thread();
                });
            }
        });
        let report = take_report();
        set_enabled(false);
        let w = report.stage("t/worker").expect("worker spans collected");
        assert_eq!(w.calls, 3);
        // Lanes are distinct per thread.
        let lanes: std::collections::BTreeSet<u32> =
            report.spans().iter().map(|s| s.lane).collect();
        assert_eq!(lanes.len(), 3);
    }

    #[cfg(feature = "capture")]
    #[test]
    fn stop_records_once_and_drop_does_not_double() {
        let _l = locked();
        set_enabled(true);
        let _ = take_report();
        let sp = span("t/once");
        let ns = sp.stop();
        assert!(ns >= 1);
        let report = take_report();
        set_enabled(false);
        assert_eq!(report.stage("t/once").map(|s| s.calls), Some(1));
    }

    #[cfg(feature = "capture")]
    #[test]
    fn merge_combines_reports() {
        let _l = locked();
        set_enabled(true);
        let _ = take_report();
        {
            let _sp = span("t/m1");
        }
        let mut a = take_report();
        {
            let _sp = span("t/m2");
        }
        let b = take_report();
        set_enabled(false);
        a.merge(b);
        assert!(a.stage("t/m1").is_some() && a.stage("t/m2").is_some());
        assert!(a.spans().windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[cfg(not(feature = "capture"))]
    #[test]
    fn noop_build_is_inert() {
        let _l = locked();
        set_enabled(true); // must be a no-op
        assert!(!enabled());
        let mut sp = span("t/noop");
        sp.add_bytes(1);
        assert_eq!(sp.stop(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert!(take_report().is_empty());
    }

    #[test]
    fn empty_report_shape() {
        let report = Report::default();
        assert!(report.is_empty());
        assert!(report.by_stage().is_empty());
        assert_eq!(report.stage_total_ns("x"), 0);
        assert!(report.table().starts_with("stage"));
    }
}

//! Block matching between Morton-ordered attribute sequences.

use pcc_types::Rgb;
use std::num::NonZeroUsize;

/// How one P-block is coded after matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// The best-matched I-block is similar enough: store only the pointer.
    Reuse,
    /// Too dissimilar: store per-point deltas against the best match.
    Delta,
}

/// The match result for one P-block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMatch {
    /// Offset of the best-matched I-block inside the candidate window
    /// (6–7 bits for the paper's 100-candidate window).
    pub window_offset: u16,
    /// Index of the matched I-block (window start + offset).
    pub i_block: u32,
    /// Normalized 2-norm distance of the best match (per 20-point block,
    /// the paper's block granularity).
    pub best_diff: u64,
    /// Reuse-or-delta decision at the configured threshold.
    pub outcome: MatchOutcome,
}

/// Aggregate reuse statistics (the paper's Fig. 10b x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReuseStats {
    /// Blocks coded as direct reuse.
    pub reused: usize,
    /// Blocks coded as post-intra-encoded deltas.
    pub delta: usize,
}

impl ReuseStats {
    /// Fraction of blocks directly reused (0 when there are no blocks).
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.reused + self.delta;
        if total == 0 {
            return 0.0;
        }
        self.reused as f64 / total as f64
    }
}

/// Work-item counts of a matching pass, for device-model charging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchCharge {
    /// (P-point, I-point) channel-difference items (`Diff_Squared`).
    pub pair_items: usize,
    /// Compared (P-block, I-block) pairs (`Squared_Sum` reductions).
    pub block_pairs: usize,
}

/// The candidate window of I-blocks for P-block `p_idx`: centered on the
/// proportionally aligned I-block, clamped to the valid range.
pub(crate) fn candidate_window(
    p_idx: usize,
    p_blocks: usize,
    i_blocks: usize,
    candidates: usize,
) -> (usize, usize) {
    if i_blocks == 0 {
        return (0, 0);
    }
    let aligned = p_idx * i_blocks / p_blocks.max(1);
    let half = candidates / 2;
    let start = aligned.saturating_sub(half);
    let end = (start + candidates).min(i_blocks);
    let start = end.saturating_sub(candidates);
    (start, end)
}

/// Proportionally maps index `k` of a `len_p`-point block onto a
/// `len_i`-point block.
#[inline]
pub(crate) fn map_index(k: usize, len_p: usize, len_i: usize) -> usize {
    if len_p == 0 || len_i == 0 {
        return 0;
    }
    (k * len_i / len_p).min(len_i - 1)
}

/// 2-norm attribute distance between a P-block and an I-block (Equ. 2),
/// normalized to a 20-point block so the threshold is scale-free.
// `map_index` clamps to `i.len() - 1` and emptiness is checked first.
#[allow(clippy::indexing_slicing)]
pub(crate) fn block_diff(p: &[Rgb], i: &[Rgb]) -> u64 {
    if p.is_empty() {
        return 0;
    }
    if i.is_empty() {
        return u64::MAX; // an empty reference block can never match
    }
    let sum: u64 = p
        .iter()
        .enumerate()
        .map(|(k, &pc)| pc.distance_squared(i[map_index(k, p.len(), i.len())]) as u64)
        .sum();
    sum * 20 / p.len() as u64
}

/// Matches every P-block against its candidate I-blocks, deciding
/// reuse-vs-delta at `threshold`.
///
/// `p_starts`/`i_starts` are the block boundaries over the Morton-ordered
/// color sequences (as produced by
/// [`pcc_intra::encode_layer`]'s segmentation helper). Every block is
/// independent — the modeled GPU runs the whole pass as two kernels.
pub fn match_blocks(
    p_colors: &[Rgb],
    i_colors: &[Rgb],
    p_starts: &[u32],
    i_starts: &[u32],
    candidates: usize,
    threshold: u32,
) -> (Vec<BlockMatch>, ReuseStats, MatchCharge) {
    match_blocks_with(
        p_colors,
        i_colors,
        p_starts,
        i_starts,
        candidates,
        threshold,
        pcc_parallel::resolve(None),
    )
}

/// [`match_blocks`] with an explicit host thread count.
///
/// P-blocks are partitioned into contiguous index chunks, searched
/// independently, and the per-chunk matches/stats/charges are merged in
/// chunk order — so the result (and any stream derived from it) is
/// byte-identical at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn match_blocks_with(
    p_colors: &[Rgb],
    i_colors: &[Rgb],
    p_starts: &[u32],
    i_starts: &[u32],
    candidates: usize,
    threshold: u32,
    threads: NonZeroUsize,
) -> (Vec<BlockMatch>, ReuseStats, MatchCharge) {
    let mut matches = Vec::new();
    let (stats, charge) = match_blocks_into(
        p_colors,
        i_colors,
        p_starts,
        i_starts,
        candidates,
        threshold,
        threads,
        &mut matches,
    );
    (matches, stats, charge)
}

/// [`match_blocks_with`] writing the matches into a caller-owned buffer
/// (cleared first). The single-threaded path fills `matches` in place
/// with no heap allocation once its capacity has warmed, which keeps the
/// inter encoder's steady state allocation-free.
// Encoder side: `starts` come from segment_starts over these exact
// color arrays, so block ranges are in bounds by construction.
#[allow(clippy::too_many_arguments, clippy::indexing_slicing)]
pub fn match_blocks_into(
    p_colors: &[Rgb],
    i_colors: &[Rgb],
    p_starts: &[u32],
    i_starts: &[u32],
    candidates: usize,
    threshold: u32,
    threads: NonZeroUsize,
    matches: &mut Vec<BlockMatch>,
) -> (ReuseStats, MatchCharge) {
    let p_blocks = p_starts.len();
    let i_blocks = i_starts.len();
    matches.clear();

    let block_of = |starts: &[u32], colors: &[Rgb], idx: usize| -> std::ops::Range<usize> {
        let start = starts[idx] as usize;
        let end = starts.get(idx + 1).map_or(colors.len(), |&e| e as usize);
        start..end
    };

    let match_range = |range: std::ops::Range<usize>, matches: &mut Vec<BlockMatch>| {
        let mut stats = ReuseStats::default();
        let mut charge = MatchCharge::default();
        for p_idx in range {
            let p_range = block_of(p_starts, p_colors, p_idx);
            let p_block = &p_colors[p_range];
            let (w_start, w_end) = candidate_window(p_idx, p_blocks, i_blocks, candidates);
            let mut best: Option<(usize, u64)> = None;
            for i_idx in w_start..w_end {
                let i_range = block_of(i_starts, i_colors, i_idx);
                let diff = block_diff(p_block, &i_colors[i_range]);
                charge.pair_items += p_block.len();
                charge.block_pairs += 1;
                if best.is_none_or(|(_, d)| diff < d) {
                    best = Some((i_idx, diff));
                }
            }
            let (i_block, best_diff) = best.unwrap_or((0, u64::MAX));
            let outcome = if best_diff <= threshold as u64 {
                stats.reused += 1;
                MatchOutcome::Reuse
            } else {
                stats.delta += 1;
                MatchOutcome::Delta
            };
            matches.push(BlockMatch {
                window_offset: (i_block - w_start) as u16,
                i_block: i_block as u32,
                best_diff,
                outcome,
            });
        }
        (stats, charge)
    };

    // Per-block work is ~candidates × block-size comparisons, so weight
    // the fan-out decision by compared pairs rather than block count.
    let weight = p_blocks.saturating_mul(candidates.min(i_blocks.max(1)));
    let fan = pcc_parallel::effective_threads(threads, weight).min(p_blocks.max(1));
    if fan <= 1 {
        return match_range(0..p_blocks, matches);
    }
    let ranges = pcc_parallel::chunk_ranges(p_blocks, fan);
    let partials = pcc_parallel::scope_map(&ranges, |_, r| {
        let mut part = Vec::with_capacity(r.len());
        let (stats, charge) = match_range(r, &mut part);
        (part, stats, charge)
    });

    matches.reserve(p_blocks);
    let mut stats = ReuseStats::default();
    let mut charge = MatchCharge::default();
    for (part_matches, part_stats, part_charge) in partials {
        matches.extend(part_matches);
        stats.reused += part_stats.reused;
        stats.delta += part_stats.delta;
        charge.pair_items += part_charge.pair_items;
        charge.block_pairs += part_charge.block_pairs;
    }
    (stats, charge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_intra::encode_layer; // only to reuse its segmentation in docs
    use proptest::prelude::*;

    fn grays(values: &[u8]) -> Vec<Rgb> {
        values.iter().map(|&v| Rgb::gray(v)).collect()
    }

    #[test]
    fn identical_sequences_fully_reuse() {
        let colors = grays(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let starts = vec![0u32, 4];
        let (matches, stats, charge) =
            match_blocks(&colors, &colors, &starts, &starts, 4, 0);
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.delta, 0);
        assert_eq!(stats.reuse_fraction(), 1.0);
        assert!(matches.iter().all(|m| m.best_diff == 0));
        assert!(charge.block_pairs > 0);
        let _ = encode_layer(&[[0; 3]], 1, 1); // keep the doc-reference honest
    }

    #[test]
    fn dissimilar_blocks_become_delta() {
        let p = grays(&[200, 200, 200, 200]);
        let i = grays(&[10, 10, 10, 10]);
        let starts = vec![0u32];
        let (matches, stats, _) = match_blocks(&p, &i, &starts, &starts, 4, 300);
        assert_eq!(stats.delta, 1);
        assert_eq!(matches[0].outcome, MatchOutcome::Delta);
        // diff = 4 points × 3 channels × 190² × 20/4.
        assert_eq!(matches[0].best_diff, 3 * 190 * 190 * 20);
    }

    #[test]
    fn threshold_moves_the_decision() {
        let p = grays(&[100, 100]);
        let i = grays(&[104, 104]);
        let starts = vec![0u32];
        // diff per point = 3·16 = 48; normalized ×20/2 → 960.
        let (_, s_tight, _) = match_blocks(&p, &i, &starts, &starts, 1, 300);
        assert_eq!(s_tight.reused, 0);
        let (_, s_loose, _) = match_blocks(&p, &i, &starts, &starts, 1, 1200);
        assert_eq!(s_loose.reused, 1);
    }

    #[test]
    fn window_clamps_at_sequence_edges() {
        assert_eq!(candidate_window(0, 10, 10, 4), (0, 4));
        assert_eq!(candidate_window(9, 10, 10, 4), (6, 10));
        assert_eq!(candidate_window(5, 10, 10, 100), (0, 10));
        assert_eq!(candidate_window(0, 10, 0, 4), (0, 0));
    }

    #[test]
    fn matcher_finds_shifted_content() {
        // I-frame holds the P-block's exact content one block later.
        let p = grays(&[50, 50, 9, 9]);
        let i = grays(&[1, 1, 50, 50]);
        let p_starts = vec![0u32, 2];
        let i_starts = vec![0u32, 2];
        let (matches, _, _) = match_blocks(&p, &i, &p_starts, &i_starts, 4, 0);
        assert_eq!(matches[0].i_block, 1); // found the shifted match
        assert_eq!(matches[0].best_diff, 0);
    }

    #[test]
    fn unequal_block_lengths_map_proportionally() {
        assert_eq!(map_index(0, 4, 2), 0);
        assert_eq!(map_index(3, 4, 2), 1);
        assert_eq!(map_index(1, 2, 6), 3);
        assert_eq!(map_index(0, 0, 5), 0);
        let p = grays(&[10, 10, 10, 10]);
        let i = grays(&[10, 10]);
        assert_eq!(block_diff(&p, &i), 0);
    }

    #[test]
    fn empty_reference_marks_everything_delta() {
        let p = grays(&[1, 2, 3]);
        let (matches, stats, _) = match_blocks(&p, &[], &[0], &[], 4, 1000);
        assert_eq!(stats.delta, 1);
        assert_eq!(matches[0].best_diff, u64::MAX);
    }

    #[test]
    fn parallel_matching_identical_on_large_input() {
        let p: Vec<Rgb> = (0..40_000).map(|i| Rgb::gray((i % 251) as u8)).collect();
        let i: Vec<Rgb> = (0..36_000).map(|i| Rgb::gray((i % 247) as u8)).collect();
        let p_starts: Vec<u32> = (0..p.len() as u32).step_by(20).collect();
        let i_starts: Vec<u32> = (0..i.len() as u32).step_by(20).collect();
        let baseline = match_blocks_with(
            &p, &i, &p_starts, &i_starts, 16, 500, NonZeroUsize::new(1).unwrap(),
        );
        for t in [2usize, 3, 8] {
            let got = match_blocks_with(
                &p, &i, &p_starts, &i_starts, 16, 500, NonZeroUsize::new(t).unwrap(),
            );
            assert_eq!(got, baseline, "threads = {t}");
        }
    }

    proptest! {
        #[test]
        fn reuse_fraction_monotone_in_threshold(
            p in prop::collection::vec(any::<u8>(), 8..64),
            i in prop::collection::vec(any::<u8>(), 8..64),
        ) {
            let p = grays(&p);
            let i = grays(&i);
            let p_starts: Vec<u32> = (0..p.len() as u32).step_by(4).collect();
            let i_starts: Vec<u32> = (0..i.len() as u32).step_by(4).collect();
            let mut last = 0.0;
            for threshold in [0u32, 100, 1_000, 10_000, 1_000_000] {
                let (_, stats, _) = match_blocks(&p, &i, &p_starts, &i_starts, 8, threshold);
                let f = stats.reuse_fraction();
                prop_assert!(f >= last, "reuse fraction decreased: {f} < {last}");
                last = f;
            }
        }

        #[test]
        fn parallel_matching_identical_to_sequential(
            p in prop::collection::vec(any::<u8>(), 16..256),
            i in prop::collection::vec(any::<u8>(), 16..256),
        ) {
            let p = grays(&p);
            let i = grays(&i);
            let p_starts: Vec<u32> = (0..p.len() as u32).step_by(4).collect();
            let i_starts: Vec<u32> = (0..i.len() as u32).step_by(4).collect();
            let baseline = match_blocks_with(
                &p, &i, &p_starts, &i_starts, 8, 500, NonZeroUsize::new(1).unwrap(),
            );
            for t in [2usize, 3, 7] {
                let got = match_blocks_with(
                    &p, &i, &p_starts, &i_starts, 8, 500, NonZeroUsize::new(t).unwrap(),
                );
                prop_assert_eq!(&got, &baseline, "threads = {}", t);
            }
        }

        #[test]
        fn pointer_fits_window(
            p in prop::collection::vec(any::<u8>(), 16..128),
            i in prop::collection::vec(any::<u8>(), 16..128),
            candidates in 1usize..16,
        ) {
            let p = grays(&p);
            let i = grays(&i);
            let p_starts: Vec<u32> = (0..p.len() as u32).step_by(4).collect();
            let i_starts: Vec<u32> = (0..i.len() as u32).step_by(4).collect();
            let (matches, _, _) = match_blocks(&p, &i, &p_starts, &i_starts, candidates, 500);
            for m in matches {
                prop_assert!((m.window_offset as usize) < candidates);
            }
        }
    }
}

//! Inter-codec configuration.

use pcc_intra::IntraConfig;

/// Configuration of the inter-frame attribute codec.
///
/// The paper's evaluated operating points (Sec. VI-B): 50 000 blocks,
/// 100 candidate blocks per match, and a direct-reuse threshold of 300
/// (quality-oriented V1) or 1200 (compression-oriented V2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterConfig {
    /// Target number of blocks per frame (scaled by point count like the
    /// intra segments).
    pub blocks: usize,
    /// Candidate I-blocks examined per P-block (the search window).
    pub candidates: usize,
    /// Direct-reuse threshold on the per-block 2-norm attribute distance
    /// (Equ. 2, normalized to the paper's ~20-point block size).
    pub reuse_threshold: u32,
    /// Intra-codec settings used for the geometry stream and the delta
    /// compression of non-reused blocks.
    pub intra: IntraConfig,
}

impl InterConfig {
    /// The quality-oriented configuration (paper's Intra-Inter-V1).
    ///
    /// The threshold value is calibrated to land the paper's V1
    /// *operating point* (moderate direct reuse, a few dB below
    /// intra-only) on this workspace's synthetic content; the paper's
    /// literal value for its capture data was 300 in the same normalized
    /// units.
    pub fn v1() -> Self {
        InterConfig {
            blocks: 50_000,
            candidates: 100,
            reuse_threshold: 1_500,
            intra: IntraConfig::paper(),
        }
    }

    /// The compression-oriented configuration (paper's Intra-Inter-V2:
    /// majority direct reuse, highest compression ratio, lowest PSNR;
    /// the paper's literal threshold was 1200 — see [`v1`](Self::v1) on
    /// calibration).
    pub fn v2() -> Self {
        InterConfig { reuse_threshold: 6_000, ..InterConfig::v1() }
    }

    /// This configuration with a different reuse threshold (the Fig. 10b
    /// sensitivity knob).
    pub fn with_threshold(self, reuse_threshold: u32) -> Self {
        InterConfig { reuse_threshold, ..self }
    }

    /// Block count scaled to a frame of `points` unique voxels,
    /// preserving the configured full-scale density (`blocks` per 10⁶
    /// points; the paper's 50 000 ⇒ ~20 points per block).
    pub fn blocks_for(&self, points: usize) -> usize {
        let per_block = 1_000_000.0 / self.blocks.max(1) as f64;
        let scaled = (points as f64 / per_block).round() as usize;
        scaled.clamp(1, self.blocks.max(1))
    }
}

impl Default for InterConfig {
    fn default() -> Self {
        InterConfig::v1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_points() {
        let v1 = InterConfig::v1();
        assert_eq!(v1.blocks, 50_000);
        assert_eq!(v1.candidates, 100);
        let v2 = InterConfig::v2();
        assert!(v2.reuse_threshold > v1.reuse_threshold);
        assert_eq!(v2.blocks, v1.blocks);
    }

    #[test]
    fn threshold_knob() {
        let c = InterConfig::v1().with_threshold(700);
        assert_eq!(c.reuse_threshold, 700);
        assert_eq!(c.candidates, 100);
    }

    #[test]
    fn block_scaling() {
        let c = InterConfig::v1();
        assert_eq!(c.blocks_for(1_000_000), 50_000);
        assert_eq!(c.blocks_for(20_000), 1_000);
        assert_eq!(c.blocks_for(5), 1);
    }
}

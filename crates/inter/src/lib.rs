//! The paper's proposed **inter-frame** attribute codec.
//!
//! P-frame attributes are compressed against the preceding I-frame
//! (paper Sec. V, Fig. 7):
//!
//! 1. **PC sorting** — the P-frame's geometry pipeline already sorted its
//!    voxels by Morton code; the reference frame is in the same order.
//! 2. **Segmentation** — both Morton-ordered sequences are split into
//!    ~50 000 blocks.
//! 3. **Block matching** — each P-block is compared against ≤100
//!    candidate I-blocks around its aligned position using the 2-norm
//!    attribute distance of Equ. 2 (`Diff_Squared` + `Squared_Sum`
//!    kernels; these dominate the energy budget, paper Fig. 9).
//! 4. **Reuse or delta** — blocks whose best match is within the
//!    threshold store only a pointer into the candidate window (**direct
//!    reuse**); the rest store per-point deltas, compressed with the
//!    intra codec's Base+Delta layer.
//!
//! The threshold is the paper's quality/compression knob: 300 for the
//!   quality-oriented **V1**, 1200 for the compression-oriented **V2**
//! (Sec. VI-B), swept in its Fig. 10b sensitivity study.
//!
//! # Examples
//!
//! ```
//! use pcc_edge::{Device, PowerMode};
//! use pcc_inter::{InterCodec, InterConfig};
//! use pcc_types::{Point3, PointCloud, Rgb, VoxelizedCloud};
//!
//! let frame = |shift: f32| -> VoxelizedCloud {
//!     let cloud: PointCloud = (0..200)
//!         .map(|i| (Point3::new(i as f32 + shift, 0.0, 0.0), Rgb::gray(100 + (i % 9) as u8)))
//!         .collect();
//!     let bb = pcc_types::Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(256.0, 1.0, 1.0));
//!     VoxelizedCloud::from_cloud_in_box(&cloud, 8, &bb)
//! };
//! let (i_frame, p_frame) = (frame(0.0), frame(1.0));
//!
//! let device = Device::jetson_agx_xavier(PowerMode::W15);
//! let codec = InterCodec::new(InterConfig::v1());
//! // The reference the decoder will hold: the decoded I-frame.
//! let intra = pcc_intra::IntraCodec::new(codec.config().intra);
//! let decoded_i = intra.decode(&intra.encode(&i_frame, &device), &device).unwrap();
//!
//! let encoded = codec.encode(&p_frame, decoded_i.colors(), &device);
//! let decoded_p = codec.decode(&encoded, decoded_i.colors(), &device).unwrap();
//! assert_eq!(decoded_p.len(), encoded.frame.unique_voxels);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Wire-derived bytes reach this crate: a bare slice index is a latent
// panic on hostile input, so all indexing must be get()-style or carry
// a local, justified allow.
#![deny(clippy::indexing_slicing)]
// Unit tests may index freely: a panic there is a test failure, not a
// reachable fault on wire data.
#![cfg_attr(test, allow(clippy::indexing_slicing))]

mod codec;
mod config;
mod matching;

pub use codec::{InterArena, InterCodec, InterEncoded, InterError};
pub use config::InterConfig;
pub use matching::{
    match_blocks, match_blocks_into, match_blocks_with, BlockMatch, MatchOutcome, ReuseStats,
};

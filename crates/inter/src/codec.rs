//! The inter-frame (P-frame) codec facade.

use crate::config::InterConfig;
use crate::matching::{self, match_blocks_into, BlockMatch, MatchOutcome, ReuseStats};
use pcc_edge::{calib, Device};
use pcc_entropy::varint;
use pcc_intra::{
    decode_layer_threaded, encode_layer_with_starts_into, geometry::GeometryEncoded,
    segment_starts, segment_starts_into, write_layer, GeometryScratch, IntraCodec, LayerEncoded,
};
use pcc_types::{Point3, Rgb, VoxelizedCloud};
use std::fmt;
use std::num::NonZeroUsize;

/// Per-session scratch for the inter encoder — a superset of the intra
/// arena: geometry buffers plus the gather accumulators, block-match
/// table, and delta-layer buffers. Owned by session-long encoders (the
/// `FrameEncoder` in `pcc-core`) so the per-frame steady state is
/// allocation-free on the single-threaded path.
#[derive(Debug, Default)]
pub struct InterArena {
    geom: GeometryScratch,
    geo: GeometryEncoded,
    sums: Vec<[u32; 3]>,
    counts: Vec<u32>,
    p_colors: Vec<Rgb>,
    p_starts: Vec<u32>,
    i_starts: Vec<u32>,
    matches: Vec<BlockMatch>,
    delta_values: Vec<[i32; 3]>,
    delta_starts: Vec<u32>,
    bases: Vec<[i32; 3]>,
    residuals: Vec<[i32; 3]>,
    median: Vec<i32>,
}

impl InterArena {
    /// Creates an empty arena; buffers grow on first use and then stick.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An encoded P-frame: intra-coded geometry plus inter-coded attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterEncoded {
    /// The underlying frame payloads (geometry stream + inter attribute
    /// payload in `attribute`).
    pub frame: pcc_intra::IntraFrame,
    /// Reuse statistics of the block-matching pass.
    pub stats: ReuseStats,
}

/// Errors produced while decoding a P-frame.
#[derive(Debug)]
#[non_exhaustive]
pub enum InterError {
    /// The geometry stream is malformed.
    Geometry(pcc_octree::StreamError),
    /// The attribute payload is malformed.
    Payload(pcc_entropy::Error),
    /// The payload's block table is inconsistent with its geometry.
    Corrupt(&'static str),
}

impl fmt::Display for InterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterError::Geometry(e) => write!(f, "geometry stream error: {e}"),
            InterError::Payload(e) => write!(f, "attribute payload error: {e}"),
            InterError::Corrupt(m) => write!(f, "corrupt inter payload: {m}"),
        }
    }
}

impl std::error::Error for InterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterError::Geometry(e) => Some(e),
            InterError::Payload(e) => Some(e),
            InterError::Corrupt(_) => None,
        }
    }
}

impl From<pcc_octree::StreamError> for InterError {
    fn from(e: pcc_octree::StreamError) -> Self {
        InterError::Geometry(e)
    }
}

impl From<pcc_entropy::Error> for InterError {
    fn from(e: pcc_entropy::Error) -> Self {
        InterError::Payload(e)
    }
}

impl From<InterError> for pcc_types::DecodeError {
    fn from(e: InterError) -> Self {
        match e {
            InterError::Geometry(g) => g.into(),
            InterError::Payload(p) => p.into(),
            InterError::Corrupt(what) => pcc_types::DecodeError::Corrupt { what, offset: 0 },
        }
    }
}

/// The proposed inter-frame codec.
///
/// Encodes P-frames against a reference attribute sequence — the decoded
/// colors of the preceding I-frame, in Morton order, exactly what the
/// decoder holds. See the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct InterCodec {
    config: InterConfig,
}

impl InterCodec {
    /// Creates a codec with the given configuration.
    pub fn new(config: InterConfig) -> Self {
        InterCodec { config }
    }

    /// The codec's configuration.
    pub fn config(&self) -> &InterConfig {
        &self.config
    }

    /// The host thread count this codec will use on `device`: the intra
    /// config wins, then the device knob, then `PCC_THREADS`, then the
    /// machine's available parallelism.
    pub fn threads_for(&self, device: &Device) -> NonZeroUsize {
        pcc_parallel::resolve(self.config.intra.threads.or(device.configured_host_threads()))
    }

    /// Encodes a P-frame: geometry via the intra pipeline, attributes via
    /// block matching against `reference` (the decoded I-frame's
    /// Morton-ordered voxel colors).
    pub fn encode(
        &self,
        cloud: &VoxelizedCloud,
        reference: &[Rgb],
        device: &Device,
    ) -> InterEncoded {
        let mut arena = InterArena::new();
        let mut out = InterEncoded::default();
        self.encode_into(cloud, reference, device, &mut arena, &mut out);
        out
    }

    /// [`encode`](Self::encode) writing into arena-owned buffers — the
    /// allocation-free per-frame entry point. `arena` carries every
    /// intermediate across frames; `out` is cleared and refilled. The
    /// bitstream is byte-identical to [`encode`](Self::encode), and the
    /// single-threaded entropy-off steady state performs no heap
    /// allocation (asserted by `tests/alloc_steady_state.rs`).
    pub fn encode_into(
        &self,
        cloud: &VoxelizedCloud,
        reference: &[Rgb],
        device: &Device,
        arena: &mut InterArena,
        out: &mut InterEncoded,
    ) {
        let threads = self.threads_for(device);
        pcc_intra::geometry::encode_in(
            cloud,
            self.config.intra.entropy,
            device,
            threads,
            &mut arena.geom,
            &mut arena.geo,
        );

        // Per-voxel colors in Morton order (averaging duplicate points),
        // identical to the intra attribute path's view.
        pcc_intra::attribute::gather_voxel_colors_into(
            cloud,
            &arena.geo,
            threads,
            &mut arena.sums,
            &mut arena.counts,
            &mut arena.p_colors,
        );
        device.charge_gpu("inter_attr/gather", &calib::GATHER, cloud.len().max(1));

        let stats =
            self.encode_attributes_in(reference, device, threads, arena, &mut out.frame.attribute);
        out.frame.geometry.clear();
        out.frame.geometry.extend_from_slice(&arena.geo.stream);
        out.frame.unique_voxels = arena.geo.unique_voxels;
        out.frame.raw_points = cloud.len();
        out.stats = stats;
    }

    /// Attribute-only inter encoding of the arena's gathered
    /// Morton-ordered color sequence, appending to `payload` (cleared
    /// first).
    // Encoder side: block ranges come from segment_starts over the same
    // color arrays, so every slice below is in range by construction.
    #[allow(clippy::indexing_slicing)]
    fn encode_attributes_in(
        &self,
        reference: &[Rgb],
        device: &Device,
        threads: NonZeroUsize,
        arena: &mut InterArena,
        payload: &mut Vec<u8>,
    ) -> ReuseStats {
        let InterArena {
            p_colors,
            p_starts,
            i_starts,
            matches,
            delta_values,
            delta_starts,
            bases,
            residuals,
            median,
            ..
        } = arena;
        let p_colors: &[Rgb] = p_colors;
        let m = p_colors.len();
        let blocks = self.config.blocks_for(m);
        segment_starts_into(m, blocks, p_starts);
        segment_starts_into(reference.len(), self.config.blocks_for(reference.len()), i_starts);

        // Block matching (the Diff_Squared / Squared_Sum kernels).
        let match_sp = pcc_probe::span("inter/match");
        let (stats, charge) = match_blocks_into(
            p_colors,
            reference,
            p_starts,
            i_starts,
            self.config.candidates,
            self.config.reuse_threshold,
            threads,
            matches,
        );
        device.charge_gpu("inter_attr/diff_squared", &calib::DIFF_SQUARED, charge.pair_items.max(1));
        device.charge_gpu("inter_attr/squared_sum", &calib::SQUARED_SUM, charge.block_pairs.max(1));
        match_sp.stop();

        // Assemble deltas for non-reused blocks (address generation).
        let _delta_sp = pcc_probe::span("inter/delta");
        delta_values.clear();
        delta_starts.clear();
        delta_starts.push(0);
        for (p_idx, mt) in matches.iter().enumerate() {
            if mt.outcome == MatchOutcome::Delta {
                let p_range = block_range(p_starts, p_colors.len(), p_idx);
                let i_range = block_range(i_starts, reference.len(), mt.i_block as usize);
                let i_block = &reference[i_range];
                let len_p = p_range.len();
                for (k, &pc) in p_colors[p_range].iter().enumerate() {
                    let base = predicted(i_block, k, len_p);
                    delta_values.push(pc.delta(base));
                }
                delta_starts.push(delta_values.len() as u32);
            }
        }
        delta_starts.pop(); // starts, not ends
        if delta_starts.is_empty() {
            delta_starts.push(0);
        }
        device.charge_gpu("inter_attr/addr_gen", &calib::ADDR_GEN, m.max(1));

        // Compress deltas with the intra Base+Delta layer (segment = block).
        let quant_step = self.config.intra.quant_step();
        encode_layer_with_starts_into(
            delta_values,
            delta_starts,
            quant_step,
            threads,
            bases,
            residuals,
            median,
        );
        device.charge_gpu("inter_attr/delta_encode", &calib::DELTA_QUANT, delta_values.len().max(1));

        // Serialize: counts, flags + pointers, then the delta layer.
        payload.clear();
        varint::write_u64(payload, m as u64);
        varint::write_u64(payload, matches.len() as u64);
        for mt in matches.iter() {
            let reuse_bit = (mt.outcome == MatchOutcome::Reuse) as u64;
            varint::write_u64(payload, (mt.window_offset as u64) << 1 | reuse_bit);
        }
        write_layer(payload, quant_step, delta_starts, bases, residuals);
        device.charge_gpu("inter_attr/reuse_encode", &calib::REUSE_ENCODE, matches.len());
        pcc_probe::add_bytes("inter/attribute", payload.len() as u64);

        stats
    }

    /// Decodes a P-frame against the same reference sequence the encoder
    /// used.
    ///
    /// # Errors
    ///
    /// Returns an [`InterError`] on malformed payloads.
    pub fn decode(
        &self,
        encoded: &InterEncoded,
        reference: &[Rgb],
        device: &Device,
    ) -> Result<VoxelizedCloud, InterError> {
        self.decode_with_limits(encoded, reference, device, &pcc_types::Limits::default())
    }

    /// [`decode`](Self::decode) under explicit resource
    /// [`pcc_types::Limits`]: geometry expansion, the entropy wrapper,
    /// and the delta-layer header are all bounded before they drive
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns an [`InterError`] on malformed payloads or an exceeded
    /// limit.
    // `p_starts` is derived locally from the decoded voxel count (never
    // from wire bytes), so block ranges — and the `colors[slot]` writes
    // they drive — are bounded by `m`; wire-derived window offsets are
    // clamped before use.
    #[allow(clippy::indexing_slicing)]
    pub fn decode_with_limits(
        &self,
        encoded: &InterEncoded,
        reference: &[Rgb],
        device: &Device,
        limits: &pcc_types::Limits,
    ) -> Result<VoxelizedCloud, InterError> {
        let geo = pcc_intra::geometry::decode_with(
            &encoded.frame.geometry,
            self.config.intra.entropy,
            device,
            limits,
        )?;
        let m = geo.coords.len();

        let mut input = encoded.frame.attribute.as_slice();
        let declared_m = varint::read_u64(&mut input)? as usize;
        if declared_m != m {
            return Err(InterError::Corrupt("voxel count disagrees with geometry"));
        }
        let n_blocks = varint::read_u64(&mut input)? as usize;
        let p_starts = segment_starts(m, self.config.blocks_for(m));
        if n_blocks != p_starts.len() {
            return Err(InterError::Corrupt("block count disagrees with segmentation"));
        }
        let i_starts = segment_starts(reference.len(), self.config.blocks_for(reference.len()));

        let mut flags = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let v = varint::read_u64(&mut input)?;
            flags.push(((v >> 1) as usize, v & 1 == 1));
        }
        let delta_layer = LayerEncoded::from_bytes_with(input, limits)?;
        let deltas = decode_layer_threaded(&delta_layer, self.threads_for(device));

        let mut colors = vec![Rgb::BLACK; m];
        let mut delta_pos = 0usize;
        for (p_idx, &(window_offset, reused)) in flags.iter().enumerate() {
            let (w_start, w_end) =
                matching::candidate_window(p_idx, n_blocks, i_starts.len(), self.config.candidates);
            let i_block_idx = (w_start + window_offset).min(w_end.saturating_sub(1));
            let i_range = block_range(&i_starts, reference.len(), i_block_idx);
            let i_block = reference.get(i_range).unwrap_or(&[]);
            let p_range = block_range(&p_starts, m, p_idx);
            let len_p = p_range.len();
            for (k, slot) in p_range.clone().enumerate() {
                let base = predicted(i_block, k, len_p);
                colors[slot] = if reused {
                    base
                } else {
                    let d = deltas.get(delta_pos).copied().ok_or(InterError::Corrupt(
                        "delta stream shorter than delta blocks",
                    ))?;
                    delta_pos += 1;
                    let b = base.to_i32();
                    Rgb::from_i32_clamped([b[0] + d[0], b[1] + d[1], b[2] + d[2]])
                };
            }
        }
        device.charge_gpu("inter_attr_decode", &calib::ATTR_DECODE, m.max(1));

        let origin = Point3::new(geo.origin[0], geo.origin[1], geo.origin[2]);
        VoxelizedCloud::from_grid_with_frame(geo.coords, colors, geo.depth, origin, geo.voxel_size)
            .map_err(|_| InterError::Corrupt("decoded grid rejected"))
    }

    /// Encodes a frame with plain intra coding (used when no reference is
    /// available, and by the IPP scheduler for I-frames).
    pub fn encode_intra(&self, cloud: &VoxelizedCloud, device: &Device) -> pcc_intra::IntraFrame {
        IntraCodec::new(self.config.intra).encode(cloud, device)
    }
}

fn block_range(starts: &[u32], len: usize, idx: usize) -> std::ops::Range<usize> {
    let start = starts.get(idx).map_or(len, |&s| s as usize);
    let end = starts.get(idx + 1).map_or(len, |&e| e as usize);
    start..end
}

/// The reference color predicted for P-point `k` of a `len_p`-point block
/// matched to `i_block` (proportional index mapping, identical to the
/// matcher's; black when the reference block is empty).
// `map_index` clamps to `i_block.len() - 1` and emptiness is checked.
#[allow(clippy::indexing_slicing)]
fn predicted(i_block: &[Rgb], k: usize, len_p: usize) -> Rgb {
    if i_block.is_empty() {
        Rgb::BLACK
    } else {
        i_block[matching::map_index(k, len_p, i_block.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_edge::PowerMode;
    use pcc_types::{Aabb, PointCloud};

    fn device() -> Device {
        Device::jetson_agx_xavier(PowerMode::W15)
    }

    fn frame(shift: f32, color_shift: i32) -> VoxelizedCloud {
        let cloud: PointCloud = (0..400)
            .map(|i| {
                let x = (i % 20) as f32 + shift;
                let y = (i / 20) as f32;
                let c = (60 + (i % 40) + color_shift).clamp(0, 255) as u8;
                (Point3::new(x, y, 0.0), Rgb::gray(c))
            })
            .collect();
        let bb = Aabb::new(Point3::ORIGIN, Point3::new(64.0, 64.0, 4.0));
        VoxelizedCloud::from_cloud_in_box(&cloud, 6, &bb)
    }

    fn reference_colors(vox: &VoxelizedCloud, d: &Device) -> Vec<Rgb> {
        let intra = IntraCodec::new(IntraConfig_lossless());
        let dec = intra.decode(&intra.encode(vox, d), d).unwrap();
        dec.colors().to_vec()
    }

    #[allow(non_snake_case)]
    fn IntraConfig_lossless() -> pcc_intra::IntraConfig {
        pcc_intra::IntraConfig::lossless()
    }

    #[test]
    fn identical_frames_reuse_everything() {
        let d = device();
        let f = frame(0.0, 0);
        let reference = reference_colors(&f, &d);
        let cfg = InterConfig { intra: IntraConfig_lossless(), ..InterConfig::v1() };
        let codec = InterCodec::new(cfg);
        let enc = codec.encode(&f, &reference, &d);
        assert_eq!(enc.stats.delta, 0);
        assert!(enc.stats.reuse_fraction() > 0.99);
        let dec = codec.decode(&enc, &reference, &d).unwrap();
        assert_eq!(dec.colors(), reference.as_slice());
    }

    #[test]
    fn similar_frames_mostly_reuse_and_round_trip() {
        let d = device();
        let i_frame = frame(0.0, 0);
        let p_frame = frame(0.3, 1);
        let reference = reference_colors(&i_frame, &d);
        let cfg = InterConfig { intra: IntraConfig_lossless(), ..InterConfig::v2() };
        let codec = InterCodec::new(cfg);
        let enc = codec.encode(&p_frame, &reference, &d);
        assert!(enc.stats.reuse_fraction() > 0.3, "reuse {}", enc.stats.reuse_fraction());
        let dec = codec.decode(&enc, &reference, &d).unwrap();
        assert_eq!(dec.len(), enc.frame.unique_voxels);
    }

    #[test]
    fn delta_blocks_reconstruct_losslessly_at_unit_step() {
        let d = device();
        let i_frame = frame(0.0, 0);
        let p_frame = frame(0.0, 90); // big color change: all delta blocks
        let reference = reference_colors(&i_frame, &d);
        let cfg = InterConfig {
            reuse_threshold: 0,
            intra: IntraConfig_lossless(),
            ..InterConfig::v1()
        };
        let codec = InterCodec::new(cfg);
        let enc = codec.encode(&p_frame, &reference, &d);
        assert_eq!(enc.stats.reused, 0);
        let dec = codec.decode(&enc, &reference, &d).unwrap();
        // With threshold 0 and unit quantization, reconstruction is exact.
        let intra = IntraCodec::new(IntraConfig_lossless());
        let expect = intra.decode(&intra.encode(&p_frame, &d), &d).unwrap();
        assert_eq!(dec.colors(), expect.colors());
    }

    #[test]
    fn v2_reuses_at_least_as_much_as_v1() {
        let d = device();
        let i_frame = frame(0.0, 0);
        let p_frame = frame(0.5, 2);
        let reference = reference_colors(&i_frame, &d);
        let e1 = InterCodec::new(InterConfig::v1()).encode(&p_frame, &reference, &d);
        let e2 = InterCodec::new(InterConfig::v2()).encode(&p_frame, &reference, &d);
        assert!(e2.stats.reuse_fraction() >= e1.stats.reuse_fraction());
        // More reuse => no larger attribute payload.
        assert!(e2.frame.attribute.len() <= e1.frame.attribute.len());
    }

    #[test]
    fn inter_payload_smaller_than_intra_for_similar_frames() {
        let d = device();
        let i_frame = frame(0.0, 0);
        let p_frame = frame(0.1, 0);
        let reference = reference_colors(&i_frame, &d);
        let codec = InterCodec::new(InterConfig::v2());
        let inter = codec.encode(&p_frame, &reference, &d);
        let intra = codec.encode_intra(&p_frame, &d);
        assert!(
            inter.frame.attribute.len() < intra.attribute.len(),
            "inter {} vs intra {}",
            inter.frame.attribute.len(),
            intra.attribute.len()
        );
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let d = device();
        let f = frame(0.0, 0);
        let reference = reference_colors(&f, &d);
        let codec = InterCodec::new(InterConfig::v1());
        let mut enc = codec.encode(&f, &reference, &d);
        enc.frame.attribute.truncate(3);
        assert!(codec.decode(&enc, &reference, &d).is_err());
        // Wrong declared voxel count.
        let mut enc2 = codec.encode(&f, &reference, &d);
        enc2.frame.attribute[0] ^= 0x7f;
        assert!(codec.decode(&enc2, &reference, &d).is_err());
    }

    #[test]
    fn timeline_records_matching_kernels() {
        let d = device();
        let f = frame(0.0, 0);
        let reference = reference_colors(&f, &d);
        d.reset();
        InterCodec::new(InterConfig::v1()).encode(&f, &reference, &d);
        let t = d.timeline();
        for op in ["diff_squared", "squared_sum", "addr_gen", "reuse_encode"] {
            assert!(t.by_op().contains_key(op), "missing kernel {op}");
        }
    }

    #[test]
    fn empty_reference_falls_back_to_deltas() {
        let d = device();
        let f = frame(0.0, 0);
        let codec = InterCodec::new(InterConfig {
            intra: IntraConfig_lossless(),
            ..InterConfig::v1()
        });
        let enc = codec.encode(&f, &[], &d);
        assert_eq!(enc.stats.reused, 0);
        let dec = codec.decode(&enc, &[], &d).unwrap();
        let intra = IntraCodec::new(IntraConfig_lossless());
        let expect = intra.decode(&intra.encode(&f, &d), &d).unwrap();
        assert_eq!(dec.colors(), expect.colors());
    }
}

//! The PCL/TMC13-style sequential octree builder.

// Builder side: `children` is a fixed [_; 8] array indexed by 3-bit
// Morton slots (always 0..8). No wire-derived bytes are parsed here.
#![allow(clippy::indexing_slicing)]

use pcc_morton::MortonCode;
use pcc_types::VoxelCoord;

/// A pointer-based octree built by point-by-point insertion.
///
/// This reproduces the baseline structure the paper profiles: every
/// insertion walks from the root to the leaf level, materializing missing
/// children as it goes — each step is an "update of the global result with
/// an intermediate local state", which is why the algorithm cannot be
/// parallelized without a tree-wide lock (paper Sec. III-A).
///
/// [`SequentialOctree::insert_ops`] counts the per-(point × level) update
/// steps so the edge-device model can charge the true sequential cost.
///
/// # Examples
///
/// ```
/// use pcc_octree::SequentialOctree;
/// use pcc_types::VoxelCoord;
///
/// let mut tree = SequentialOctree::new(2);
/// tree.insert(VoxelCoord::new(0, 0, 0));
/// tree.insert(VoxelCoord::new(3, 3, 3));
/// assert_eq!(tree.leaf_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SequentialOctree {
    depth: u8,
    root: Node,
    insert_ops: u64,
    leaf_count: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<Box<Node>>; 8],
}

impl SequentialOctree {
    /// Creates an empty octree of the given leaf depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `1..=21`.
    pub fn new(depth: u8) -> Self {
        assert!((1..=21).contains(&depth), "octree depth {depth} outside 1..=21");
        SequentialOctree { depth, root: Node::default(), insert_ops: 0, leaf_count: 0 }
    }

    /// Builds a tree by inserting every coordinate in order.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is invalid or any coordinate does not fit it.
    pub fn from_coords(coords: &[VoxelCoord], depth: u8) -> Self {
        let mut tree = SequentialOctree::new(depth);
        for &c in coords {
            tree.insert(c);
        }
        tree
    }

    /// The leaf depth.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Inserts one voxel, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate does not fit the tree's depth.
    pub fn insert(&mut self, coord: VoxelCoord) -> bool {
        assert!(coord.fits_depth(self.depth), "coordinate {coord:?} exceeds depth {}", self.depth);
        let code = MortonCode::from_coord(coord);
        let mut node = &mut self.root;
        let mut newly_created = false;
        for level in (0..self.depth).rev() {
            // Child slot: the 3 Morton bits for this level.
            let slot = ((code.value() >> (3 * level as u32)) & 7) as usize;
            self.insert_ops += 1;
            let child = &mut node.children[slot];
            if child.is_none() {
                *child = Some(Box::default());
                newly_created = true;
            }
            node = child.as_mut().expect("just materialized");
        }
        if newly_created {
            self.leaf_count += 1;
        }
        newly_created
    }

    /// Total per-(point × level) update steps performed so far — the
    /// quantity the device model charges for the sequential baseline.
    pub fn insert_ops(&self) -> u64 {
        self.insert_ops
    }

    /// Number of distinct occupied leaf voxels.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Total nodes in the tree (internal + leaves, excluding the root).
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            node.children
                .iter()
                .flatten()
                .map(|c| 1 + count(c))
                .sum()
        }
        count(&self.root)
    }

    /// Serializes the tree to breadth-first occupancy bytes (one byte per
    /// internal node, root first; level-by-level).
    ///
    /// The result is identical to
    /// [`ParallelOctree::occupancy`](crate::ParallelOctree::occupancy) for
    /// the same voxel set.
    pub fn occupancy(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut frontier: Vec<&Node> = vec![&self.root];
        for _level in 0..self.depth {
            let mut next = Vec::new();
            for node in &frontier {
                let mut byte = 0u8;
                for (slot, child) in node.children.iter().enumerate() {
                    if let Some(c) = child {
                        byte |= 1 << slot;
                        next.push(c.as_ref());
                    }
                }
                bytes.push(byte);
            }
            frontier = next;
        }
        bytes
    }

    /// The occupied leaf coordinates in Morton (Z-curve) order.
    pub fn leaves(&self) -> Vec<VoxelCoord> {
        fn walk(node: &Node, prefix: u64, level: u8, depth: u8, out: &mut Vec<VoxelCoord>) {
            for slot in 0..8u64 {
                if let Some(child) = &node.children[slot as usize] {
                    let code = (prefix << 3) | slot;
                    if level + 1 == depth {
                        out.push(MortonCode::from_raw(code).to_coord());
                    } else {
                        walk(child, code, level + 1, depth, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.leaf_count);
        walk(&self.root, 0, 0, self.depth, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_morton::encode;
    use proptest::prelude::*;

    #[test]
    fn empty_tree() {
        let t = SequentialOctree::new(3);
        assert_eq!(t.leaf_count(), 0);
        assert_eq!(t.node_count(), 0);
        // An empty tree still serializes its (empty) root byte.
        assert_eq!(t.occupancy(), vec![0]);
        assert!(t.leaves().is_empty());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut t = SequentialOctree::new(4);
        assert!(t.insert(VoxelCoord::new(1, 2, 3)));
        assert!(!t.insert(VoxelCoord::new(1, 2, 3)));
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.insert_ops(), 8); // 2 inserts x 4 levels
    }

    #[test]
    fn paper_fig5_three_points() {
        // Depth 3 (8x8x8 grid, bbox side 8 as in the paper's walkthrough,
        // with P1 shifted into the positive octant: the paper's bounding
        // box translation maps [-1,0,0] -> [0,...]; here we use the grid
        // coordinates directly).
        let coords =
            vec![VoxelCoord::new(1, 0, 0), VoxelCoord::new(0, 0, 0), VoxelCoord::new(3, 3, 3)];
        let t = SequentialOctree::from_coords(&coords, 2);
        assert_eq!(t.leaf_count(), 3);
        // Root: children 0 (P0,P1 at low octant) and ... level-1 cells:
        // (0,0,0)&(1,0,0) are in root child 0; (3,3,3) in root child 7
        // on a 4-wide grid (cells of side 2).
        let occ = t.occupancy();
        assert_eq!(occ[0], 0b1000_0001);
    }

    #[test]
    fn leaves_are_morton_sorted() {
        let coords = vec![
            VoxelCoord::new(7, 7, 7),
            VoxelCoord::new(0, 0, 0),
            VoxelCoord::new(5, 1, 2),
            VoxelCoord::new(1, 1, 1),
        ];
        let t = SequentialOctree::from_coords(&coords, 3);
        let leaves = t.leaves();
        let codes: Vec<_> = leaves.iter().map(|&c| encode(c)).collect();
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(leaves.len(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds depth")]
    fn out_of_range_coord_panics() {
        let mut t = SequentialOctree::new(2);
        t.insert(VoxelCoord::new(4, 0, 0));
    }

    #[test]
    fn node_count_matches_structure() {
        let mut t = SequentialOctree::new(2);
        t.insert(VoxelCoord::new(0, 0, 0));
        // One level-1 node + one leaf.
        assert_eq!(t.node_count(), 2);
        t.insert(VoxelCoord::new(1, 0, 0)); // same level-1 cell, new leaf
        assert_eq!(t.node_count(), 3);
    }

    proptest! {
        #[test]
        fn leaves_round_trip_inserted_set(
            coords in prop::collection::vec((0u32..16, 0u32..16, 0u32..16), 0..100)
        ) {
            let coords: Vec<VoxelCoord> =
                coords.into_iter().map(|(x, y, z)| VoxelCoord::new(x, y, z)).collect();
            let t = SequentialOctree::from_coords(&coords, 4);
            let mut expected: Vec<u64> =
                coords.iter().map(|&c| encode(c).value()).collect();
            expected.sort_unstable();
            expected.dedup();
            let got: Vec<u64> = t.leaves().iter().map(|&c| encode(c).value()).collect();
            prop_assert_eq!(got, expected);
        }
    }
}

//! The proposed Morton-code-driven parallel octree builder.

// Builder side: every index walks structures this module just built
// (`levels` has depth+1 entries, parent links come from compact_runs over
// the same arrays). No wire-derived bytes are parsed here — that is
// serialize.rs, which stays index-free.
#![allow(clippy::indexing_slicing)]

use pcc_morton::{sort_codes, MortonCode};
use pcc_types::VoxelCoord;
use std::num::NonZeroUsize;

/// The code/parent arrays of one octree level.
///
/// This is the array-of-relationships representation the paper's proposed
/// pipeline emits instead of a pointer tree (Fig. 5, lower pipeline): the
/// `codes` array holds every node's Morton prefix at this level, and
/// `parent[i]` is the index (in the next-shallower level's `codes`) of
/// node `i`'s parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelArrays {
    /// Morton prefixes of the occupied cells at this level, ascending.
    pub codes: Vec<MortonCode>,
    /// For each node, the index of its parent in the previous level
    /// (`u32::MAX` for the root level's single node).
    pub parent: Vec<u32>,
}

/// An octree represented as per-level code/parent arrays, built from
/// sorted Morton codes with data-parallel passes only.
///
/// Construction mirrors the GPU algorithm ([Karras 2012] as applied by the
/// paper): once the leaf codes are sorted, the set of occupied cells at
/// every shallower level is the compaction of `code >> 3`, and parent
/// links fall out of the compaction offsets. No insertion order, no
/// locks — every level is a map + prefix-scan over independent elements.
///
/// [Karras 2012]: https://doi.org/10.2312/EGGH/HPG12/033-037
///
/// # Examples
///
/// ```
/// use pcc_octree::ParallelOctree;
/// use pcc_types::VoxelCoord;
///
/// let tree = ParallelOctree::from_coords(
///     &[VoxelCoord::new(0, 0, 0), VoxelCoord::new(3, 3, 3)],
///     2,
/// );
/// assert_eq!(tree.leaf_count(), 2);
/// assert_eq!(tree.occupancy()[0], 0b1000_0001); // root byte
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParallelOctree {
    depth: u8,
    /// `levels[0]` is the root level (1 node); `levels[depth]` the leaves.
    levels: Vec<LevelArrays>,
}

impl ParallelOctree {
    /// Builds the tree from *sorted, deduplicated* leaf Morton codes.
    ///
    /// This is the zero-copy entry point for pipelines that already sorted
    /// their codes (the intra-frame codec sorts once and reuses the order
    /// for attributes).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `1..=21`, if the codes are not
    /// strictly ascending, or if any code exceeds the depth.
    pub fn from_sorted_codes(codes: Vec<MortonCode>, depth: u8) -> Self {
        Self::from_sorted_codes_with(codes, depth, pcc_parallel::resolve(None))
    }

    /// [`from_sorted_codes`](Self::from_sorted_codes) with an explicit
    /// thread count.
    ///
    /// Each level's compaction runs as a two-pass parallel scan
    /// ([`pcc_parallel::compact_runs`]): chunks aligned to parent-run
    /// boundaries count their unique parents, a prefix sum assigns each
    /// chunk a contiguous output region, and the chunks then write parent
    /// codes and parent links into disjoint slices. The resulting arrays
    /// are byte-identical to the sequential compaction at every thread
    /// count.
    pub fn from_sorted_codes_with(
        codes: Vec<MortonCode>,
        depth: u8,
        threads: NonZeroUsize,
    ) -> Self {
        let mut tree = ParallelOctree { depth, levels: Vec::new() };
        tree.rebuild_from_sorted_codes(&codes, depth, threads);
        tree
    }

    /// Rebuilds this tree in place from *sorted, deduplicated* leaf Morton
    /// codes, reusing every per-level allocation from the previous build.
    ///
    /// This is the frame-arena entry point: an encoder that keeps one
    /// `ParallelOctree` alive across a video session performs no heap
    /// allocation for tree construction once the level buffers have warmed
    /// to the working-set size. The resulting tree is byte-identical to
    /// [`from_sorted_codes_with`](Self::from_sorted_codes_with) — both run
    /// the same per-level [`pcc_parallel::compact_runs_into`] compaction.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `1..=21`, if the codes are not
    /// strictly ascending, or if any code exceeds the depth.
    pub fn rebuild_from_sorted_codes(
        &mut self,
        codes: &[MortonCode],
        depth: u8,
        threads: NonZeroUsize,
    ) {
        assert!((1..=21).contains(&depth), "octree depth {depth} outside 1..=21");
        assert!(
            codes.windows(2).all(|w| w[0] < w[1]),
            "leaf codes must be strictly ascending (sorted + deduplicated)"
        );
        if let Some(last) = codes.last() {
            assert!(
                last.value() < 1u64 << (3 * depth as u32),
                "leaf code {last} exceeds depth {depth}"
            );
        }

        self.depth = depth;
        self.levels
            .resize_with(depth as usize + 1, || LevelArrays { codes: Vec::new(), parent: Vec::new() });

        if codes.is_empty() {
            // Degenerate tree: an (empty) root node so the occupancy
            // stream still carries one root byte, matching the sequential
            // builder.
            for level in &mut self.levels {
                level.codes.clear();
                level.parent.clear();
            }
            self.levels[0].codes.push(MortonCode::ZERO);
            self.levels[0].parent.push(u32::MAX);
            return;
        }

        let leaf = &mut self.levels[depth as usize];
        leaf.codes.clear();
        leaf.codes.extend_from_slice(codes);
        leaf.parent.clear();

        // Derive each shallower level by compacting `code >> 3`: a map
        // producing parent codes, then a run-compaction scan. The scan is
        // chunk-parallel with chunks aligned to parent-run boundaries, so
        // every thread count produces the identical arrays.
        let _sp = pcc_probe::span("octree/compact");
        for level in (0..depth as usize).rev() {
            let (upper, lower) = self.levels.split_at_mut(level + 1);
            let parent_level = &mut upper[level];
            let child_level = &mut lower[0];
            pcc_parallel::compact_runs_into(
                &child_level.codes,
                |c| c.parent(),
                threads,
                &mut parent_level.codes,
                &mut child_level.parent,
            );
        }
        let root_len = self.levels[0].codes.len();
        self.levels[0].parent.clear();
        self.levels[0].parent.resize(root_len, u32::MAX);
    }

    /// Builds the tree from unsorted voxel coordinates (sorts and
    /// deduplicates internally).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is invalid or any coordinate does not fit it.
    pub fn from_coords(coords: &[VoxelCoord], depth: u8) -> Self {
        for c in coords {
            assert!(c.fits_depth(depth), "coordinate {c:?} exceeds depth {depth}");
        }
        let codes: Vec<MortonCode> = coords.iter().map(|&c| MortonCode::from_coord(c)).collect();
        let mut sorted = sort_codes(&codes).codes;
        sorted.dedup();
        ParallelOctree::from_sorted_codes(sorted, depth)
    }

    /// The leaf depth.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of occupied leaf voxels.
    pub fn leaf_count(&self) -> usize {
        self.levels[self.depth as usize].codes.len()
    }

    /// Total nodes across all levels below the root (matches
    /// [`SequentialOctree::node_count`](crate::SequentialOctree::node_count)).
    pub fn node_count(&self) -> usize {
        self.levels[1..].iter().map(|l| l.codes.len()).sum()
    }

    /// The code/parent arrays of one level (0 = root, `depth` = leaves).
    ///
    /// # Panics
    ///
    /// Panics if `level > depth`.
    pub fn level(&self, level: u8) -> &LevelArrays {
        &self.levels[level as usize]
    }

    /// The sorted leaf codes.
    pub fn leaf_codes(&self) -> &[MortonCode] {
        &self.levels[self.depth as usize].codes
    }

    /// The occupied leaf coordinates in Morton order.
    pub fn leaves(&self) -> Vec<VoxelCoord> {
        self.leaf_codes().iter().map(|c| c.to_coord()).collect()
    }

    /// Computes the breadth-first occupancy bytes via the paper's
    /// Algorithm 1: every child ORs `1 << (code % 8)` into its parent's
    /// byte — one independent operation per node, hence fully parallel.
    ///
    /// The result is bit-identical to
    /// [`SequentialOctree::occupancy`](crate::SequentialOctree::occupancy)
    /// for the same voxel set.
    pub fn occupancy(&self) -> Vec<u8> {
        self.occupancy_with(pcc_parallel::resolve(None))
    }

    /// [`occupancy`](Self::occupancy) with an explicit thread count.
    ///
    /// Children are chunked with boundaries aligned to parent runs, so all
    /// children of one parent land in the same chunk; each chunk then owns
    /// a disjoint contiguous region of the level's bytes (safe
    /// `split_at_mut` partition, no atomics) and the output is
    /// byte-identical at every thread count.
    pub fn occupancy_with(&self, threads: NonZeroUsize) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.occupancy_into(threads, &mut bytes);
        bytes
    }

    /// [`occupancy_with`](Self::occupancy_with) writing into a caller-owned
    /// buffer: `out` is cleared, zero-filled to
    /// [`occupancy_len`](Self::occupancy_len) and each level's bytes are
    /// OR-ed directly into their final region — no per-level staging
    /// vector, and no heap allocation at all on the single-thread path
    /// once `out` has warmed to the frame size.
    pub fn occupancy_into(&self, threads: NonZeroUsize, out: &mut Vec<u8>) {
        let _sp = pcc_probe::span("octree/occupancy");
        out.clear();
        out.resize(self.occupancy_len(), 0);
        let mut rest: &mut [u8] = out.as_mut_slice();
        for level in 0..self.depth as usize {
            let child = &self.levels[level + 1];
            let n = child.codes.len();
            let (level_bytes, tail) =
                std::mem::take(&mut rest).split_at_mut(self.levels[level].codes.len());
            rest = tail;
            let fan = pcc_parallel::effective_threads(threads, n);
            if fan <= 1 {
                for (code, &parent) in child.codes.iter().zip(&child.parent) {
                    level_bytes[parent as usize] |= 1 << code.child_slot();
                }
            } else {
                let ranges = pcc_parallel::aligned_chunk_ranges(n, fan, |i| {
                    child.parent[i] != child.parent[i - 1]
                });
                let cuts: Vec<usize> =
                    ranges[1..].iter().map(|r| child.parent[r.start] as usize).collect();
                let parts = pcc_parallel::split_at_many(level_bytes, &cuts);
                pcc_parallel::scope_run(parts, ranges, |_, range, part| {
                    let base = child.parent[range.start] as usize;
                    for i in range {
                        part[child.parent[i] as usize - base] |= 1 << child.codes[i].child_slot();
                    }
                });
            }
        }
    }

    /// Number of occupancy bytes [`occupancy`](Self::occupancy) produces
    /// (one per internal node, including the root).
    pub fn occupancy_len(&self) -> usize {
        self.levels[..self.depth as usize].iter().map(|l| l.codes.len()).sum()
    }

    /// Serializes the tree into a self-describing [`OccupancyStream`]
    /// byte buffer.
    pub fn serialize(&self) -> Vec<u8> {
        crate::serialize_occupancy(self.depth, self.leaf_count(), &self.occupancy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialOctree;
    use pcc_morton::encode;
    use proptest::prelude::*;

    fn coords_fig5() -> Vec<VoxelCoord> {
        vec![VoxelCoord::new(0, 0, 0), VoxelCoord::new(1, 0, 0), VoxelCoord::new(3, 3, 3)]
    }

    #[test]
    fn fig5_code_and_parent_arrays() {
        let tree = ParallelOctree::from_coords(&coords_fig5(), 2);
        // Leaves: codes 0, 1, 63; their parents at level 1: 0, 0, 7.
        let leaves = tree.level(2);
        assert_eq!(
            leaves.codes,
            vec![MortonCode::from_raw(0), MortonCode::from_raw(1), MortonCode::from_raw(63)]
        );
        assert_eq!(leaves.parent, vec![0, 0, 1]);
        let mid = tree.level(1);
        assert_eq!(mid.codes, vec![MortonCode::from_raw(0), MortonCode::from_raw(7)]);
        assert_eq!(mid.parent, vec![0, 0]);
        assert_eq!(tree.level(0).codes, vec![MortonCode::ZERO]);
    }

    #[test]
    fn fig5_occupancy_bytes() {
        let tree = ParallelOctree::from_coords(&coords_fig5(), 2);
        let occ = tree.occupancy();
        // Root: children 0 and 7 -> 0b1000_0001.
        // Level-1 node 0: leaves 0 and 1 -> 0b0000_0011.
        // Level-1 node 7: leaf 63 (slot 7) -> 0b1000_0000.
        assert_eq!(occ, vec![0b1000_0001, 0b0000_0011, 0b1000_0000]);
    }

    #[test]
    fn empty_tree() {
        let tree = ParallelOctree::from_coords(&[], 3);
        assert_eq!(tree.leaf_count(), 0);
        assert_eq!(tree.node_count(), 0);
        // Root byte exists and is zero.
        assert_eq!(tree.occupancy(), vec![0]);
    }

    #[test]
    fn single_point_tree() {
        let tree = ParallelOctree::from_coords(&[VoxelCoord::new(5, 6, 7)], 3);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.node_count(), 3);
        let occ = tree.occupancy();
        assert_eq!(occ.len(), 3);
        assert_eq!(occ.iter().map(|b| b.count_ones()).sum::<u32>(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_codes_panic() {
        ParallelOctree::from_sorted_codes(
            vec![MortonCode::from_raw(5), MortonCode::from_raw(3)],
            3,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds depth")]
    fn overflow_code_panics() {
        ParallelOctree::from_sorted_codes(vec![MortonCode::from_raw(512)], 3);
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let tree = ParallelOctree::from_coords(
            &[VoxelCoord::new(1, 1, 1), VoxelCoord::new(1, 1, 1)],
            2,
        );
        assert_eq!(tree.leaf_count(), 1);
    }

    proptest! {
        /// The headline structural invariant: the parallel builder matches
        /// the sequential baseline byte-for-byte.
        #[test]
        fn matches_sequential_occupancy(
            coords in prop::collection::vec((0u32..32, 0u32..32, 0u32..32), 1..200)
        ) {
            let coords: Vec<VoxelCoord> =
                coords.into_iter().map(|(x, y, z)| VoxelCoord::new(x, y, z)).collect();
            let par = ParallelOctree::from_coords(&coords, 5);
            let seq = SequentialOctree::from_coords(&coords, 5);
            prop_assert_eq!(par.occupancy(), seq.occupancy());
            prop_assert_eq!(par.leaves(), seq.leaves());
            prop_assert_eq!(par.node_count(), seq.node_count());
        }

        #[test]
        fn parent_links_are_consistent(
            coords in prop::collection::vec((0u32..64, 0u32..64, 0u32..64), 1..150)
        ) {
            let coords: Vec<VoxelCoord> =
                coords.into_iter().map(|(x, y, z)| VoxelCoord::new(x, y, z)).collect();
            let tree = ParallelOctree::from_coords(&coords, 6);
            for level in 1..=6u8 {
                let l = tree.level(level);
                let up = tree.level(level - 1);
                for (code, &p) in l.codes.iter().zip(&l.parent) {
                    prop_assert_eq!(up.codes[p as usize], code.parent());
                }
                // Codes strictly ascending at every level.
                prop_assert!(l.codes.windows(2).all(|w| w[0] < w[1]));
            }
        }

        #[test]
        fn leaf_codes_survive_round_trip(
            raw in prop::collection::btree_set(0u64..(1 << 15), 1..100)
        ) {
            let codes: Vec<MortonCode> =
                raw.iter().map(|&v| MortonCode::from_raw(v)).collect();
            let tree = ParallelOctree::from_sorted_codes(codes.clone(), 5);
            prop_assert_eq!(tree.leaf_codes().to_vec(), codes);
        }
    }

    proptest! {
        /// Tentpole determinism invariant: building and serializing the
        /// tree at thread counts 1, 2 and 7 yields identical bytes.
        #[test]
        fn occupancy_identical_across_thread_counts(
            raw in prop::collection::btree_set(0u64..(1 << 18), 1..300)
        ) {
            let codes: Vec<MortonCode> =
                raw.iter().map(|&v| MortonCode::from_raw(v)).collect();
            let nz = |n| NonZeroUsize::new(n).unwrap();
            let base = ParallelOctree::from_sorted_codes_with(codes.clone(), 6, nz(1));
            let base_occ = base.occupancy_with(nz(1));
            for threads in [2usize, 7] {
                let tree = ParallelOctree::from_sorted_codes_with(codes.clone(), 6, nz(threads));
                prop_assert_eq!(&tree, &base);
                prop_assert_eq!(tree.occupancy_with(nz(threads)), base_occ.clone());
            }
        }
    }

    #[test]
    fn large_tree_identical_across_thread_counts() {
        // Dense enough (> 4096 leaves) that the chunked paths really fan out.
        // `i*4 + i%3` is strictly ascending (consecutive deltas are 2 or 5)
        // and irregular enough to vary run lengths at every level.
        let codes: Vec<MortonCode> =
            (0..40_000u64).map(|i| MortonCode::from_raw(i * 4 + (i % 3))).collect();
        let nz = |n| NonZeroUsize::new(n).unwrap();
        let base = ParallelOctree::from_sorted_codes_with(codes.clone(), 7, nz(1));
        let base_occ = base.occupancy_with(nz(1));
        assert_eq!(base_occ, SequentialOctree::from_coords(&base.leaves(), 7).occupancy());
        for threads in [2usize, 3, 8] {
            let tree = ParallelOctree::from_sorted_codes_with(codes.clone(), 7, nz(threads));
            assert_eq!(tree, base, "threads={threads}");
            assert_eq!(tree.occupancy_with(nz(threads)), base_occ, "threads={threads}");
        }
    }

    #[test]
    fn rebuild_reuses_levels_and_matches_constructor() {
        let nz = |n| NonZeroUsize::new(n).unwrap();
        let mut tree = ParallelOctree::from_sorted_codes(Vec::new(), 1);
        let mut occ = Vec::new();
        // Alternate between a large tree, a smaller one and the empty one so
        // stale level arrays and occupancy bytes from a previous (bigger)
        // frame must not leak into the next build.
        let clouds: Vec<Vec<MortonCode>> = vec![
            (0..30_000u64).map(|i| MortonCode::from_raw(i * 4 + (i % 3))).collect(),
            (0..500u64).map(|i| MortonCode::from_raw(i * 9)).collect(),
            Vec::new(),
            (0..20_000u64).map(|i| MortonCode::from_raw(i * 7 + (i % 5))).collect(),
        ];
        for codes in &clouds {
            for threads in [1usize, 2, 8] {
                tree.rebuild_from_sorted_codes(codes, 7, nz(threads));
                let fresh = ParallelOctree::from_sorted_codes_with(codes.clone(), 7, nz(threads));
                assert_eq!(tree, fresh, "threads={threads} n={}", codes.len());
                tree.occupancy_into(nz(threads), &mut occ);
                assert_eq!(occ, fresh.occupancy_with(nz(threads)), "threads={threads}");
            }
        }
        // Depth changes must also be tracked by the reused tree.
        tree.rebuild_from_sorted_codes(&clouds[1], 5, nz(1));
        let fresh = ParallelOctree::from_sorted_codes_with(clouds[1].clone(), 5, nz(1));
        assert_eq!(tree, fresh);
    }

    #[test]
    fn morton_order_agrees_with_encode() {
        let coords = vec![VoxelCoord::new(2, 3, 1), VoxelCoord::new(1, 1, 0)];
        let tree = ParallelOctree::from_coords(&coords, 3);
        let mut expect: Vec<u64> = coords.iter().map(|&c| encode(c).value()).collect();
        expect.sort_unstable();
        let got: Vec<u64> = tree.leaf_codes().iter().map(|c| c.value()).collect();
        assert_eq!(got, expect);
    }
}

//! Self-describing occupancy streams and the geometry decoder.

use pcc_morton::MortonCode;
use pcc_types::{DecodeError, LimitExceeded, Limits, VoxelCoord};
use std::fmt;

/// Magic byte identifying an occupancy stream.
const MAGIC: u8 = 0xa7;

/// Errors produced while decoding an occupancy stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamError {
    /// The stream does not start with the occupancy magic byte.
    BadMagic,
    /// The stream header declares an unsupported depth.
    BadDepth(u8),
    /// The stream ended before all declared nodes were read.
    Truncated,
    /// The decoded leaf count disagrees with the header.
    LeafMismatch {
        /// Leaves declared in the header.
        declared: usize,
        /// Leaves actually decoded.
        decoded: usize,
    },
    /// The stream declared more resources than [`Limits`] allow.
    LimitExceeded(LimitExceeded),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::BadMagic => write!(f, "not an occupancy stream (bad magic byte)"),
            StreamError::BadDepth(d) => write!(f, "unsupported octree depth {d}"),
            StreamError::Truncated => write!(f, "occupancy stream ended prematurely"),
            StreamError::LeafMismatch { declared, decoded } => {
                write!(f, "decoded {decoded} leaves but header declares {declared}")
            }
            StreamError::LimitExceeded(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<LimitExceeded> for StreamError {
    fn from(e: LimitExceeded) -> Self {
        StreamError::LimitExceeded(e)
    }
}

impl From<StreamError> for DecodeError {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::BadMagic => DecodeError::BadMagic { offset: 0 },
            StreamError::BadDepth(_) => DecodeError::Corrupt { what: "octree depth", offset: 1 },
            StreamError::Truncated => DecodeError::Truncated { offset: 0 },
            StreamError::LeafMismatch { .. } => {
                DecodeError::Corrupt { what: "leaf count mismatch", offset: 0 }
            }
            StreamError::LimitExceeded(l) => DecodeError::Limit(l),
        }
    }
}

/// A parsed occupancy stream header plus its payload view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyStream<'a> {
    /// Leaf depth of the serialized octree.
    pub depth: u8,
    /// Number of occupied leaf voxels.
    pub leaf_count: usize,
    /// Breadth-first occupancy bytes (root first).
    pub occupancy: &'a [u8],
}

/// Serializes breadth-first occupancy bytes into a self-describing buffer:
/// magic, depth, varint leaf count, then the occupancy bytes.
pub fn serialize_occupancy(depth: u8, leaf_count: usize, occupancy: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(occupancy.len() + 8);
    serialize_occupancy_into(depth, leaf_count, occupancy, &mut out);
    out
}

/// [`serialize_occupancy`] appending into a caller-owned buffer — the
/// allocation-free variant frame arenas use (the buffer is *not* cleared,
/// so a stream header can precede the occupancy section).
pub fn serialize_occupancy_into(
    depth: u8,
    leaf_count: usize,
    occupancy: &[u8],
    out: &mut Vec<u8>,
) {
    out.push(MAGIC);
    out.push(depth);
    write_varint(out, leaf_count as u64);
    out.extend_from_slice(occupancy);
}

/// Decodes an occupancy stream back to its voxel set, in Morton order.
///
/// Expansion proceeds level by level: each occupancy byte of the current
/// frontier spawns the child codes of its set bits; at the leaf level the
/// codes decode to coordinates. Because the stream is breadth-first and
/// codes are built high-bits-first, the output is exactly the sorted
/// voxel set the encoder saw — geometry is *lossless at voxel precision*.
///
/// # Errors
///
/// Returns a [`StreamError`] on malformed input.
///
/// # Examples
///
/// ```
/// use pcc_octree::{decode_occupancy, ParallelOctree};
/// use pcc_types::VoxelCoord;
///
/// let tree = ParallelOctree::from_coords(&[VoxelCoord::new(2, 1, 0)], 4);
/// let decoded = decode_occupancy(&tree.serialize())?;
/// assert_eq!(decoded, vec![VoxelCoord::new(2, 1, 0)]);
/// # Ok::<(), pcc_octree::StreamError>(())
/// ```
pub fn decode_occupancy(stream: &[u8]) -> Result<Vec<VoxelCoord>, StreamError> {
    decode_occupancy_with(stream, &Limits::default())
}

/// Decodes an occupancy stream under explicit resource [`Limits`].
///
/// Enforces `limits.max_depth` on the declared depth and
/// `limits.max_points` on both the declared leaf count and the expanding
/// frontier at every level, so a hostile stream can neither declare an
/// absurd leaf count nor grow the breadth-first frontier past the limit —
/// the check fires before the level's expansion is retained.
///
/// # Errors
///
/// Returns a [`StreamError`] on malformed input or when a limit is hit.
pub fn decode_occupancy_with(
    stream: &[u8],
    limits: &Limits,
) -> Result<Vec<VoxelCoord>, StreamError> {
    let parsed = parse_stream(stream)?;
    limits.check_depth(parsed.depth)?;
    limits.check_points(parsed.leaf_count as u64)?;
    let mut frontier: Vec<u64> = vec![0]; // root prefix
    let mut pos = 0usize;
    for _level in 0..parsed.depth {
        // Each frontier node consumes one occupancy byte and spawns at most
        // 8 children, so `next` is bounded by 8 × the bytes consumed this
        // level — but a deep stream could still compound that. Cap every
        // intermediate frontier at the leaf budget: in a well-formed
        // breadth-first tree, no level is ever wider than the leaf level.
        let mut next = Vec::new();
        for &prefix in &frontier {
            let byte = *parsed.occupancy.get(pos).ok_or(StreamError::Truncated)?;
            pos += 1;
            for slot in 0..8u64 {
                if byte & (1 << slot) != 0 {
                    next.push((prefix << 3) | slot);
                }
            }
        }
        limits.check_points(next.len() as u64)?;
        frontier = next;
    }
    if frontier.len() != parsed.leaf_count {
        return Err(StreamError::LeafMismatch {
            declared: parsed.leaf_count,
            decoded: frontier.len(),
        });
    }
    Ok(frontier.into_iter().map(|c| MortonCode::from_raw(c).to_coord()).collect())
}

/// Parses the header of an occupancy stream without expanding it.
///
/// # Errors
///
/// Returns a [`StreamError`] if the magic, depth, or length fields are
/// malformed.
pub fn parse_stream(stream: &[u8]) -> Result<OccupancyStream<'_>, StreamError> {
    let (&magic, rest) = stream.split_first().ok_or(StreamError::Truncated)?;
    if magic != MAGIC {
        return Err(StreamError::BadMagic);
    }
    let (&depth, mut rest) = rest.split_first().ok_or(StreamError::Truncated)?;
    if !(1..=21).contains(&depth) {
        return Err(StreamError::BadDepth(depth));
    }
    let leaf_count = read_varint(&mut rest)? as usize;
    Ok(OccupancyStream { depth, leaf_count, occupancy: rest })
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(input: &mut &[u8]) -> Result<u64, StreamError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&b, rest) = input.split_first().ok_or(StreamError::Truncated)?;
        *input = rest;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StreamError::Truncated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParallelOctree, SequentialOctree};
    use proptest::prelude::*;

    #[test]
    fn round_trip_small() {
        let coords = vec![
            VoxelCoord::new(0, 0, 0),
            VoxelCoord::new(1, 0, 0),
            VoxelCoord::new(3, 3, 3),
            VoxelCoord::new(2, 2, 2),
        ];
        let tree = ParallelOctree::from_coords(&coords, 2);
        let decoded = decode_occupancy(&tree.serialize()).unwrap();
        assert_eq!(decoded, tree.leaves());
    }

    #[test]
    fn sequential_stream_decodes_identically() {
        let coords = vec![VoxelCoord::new(9, 1, 4), VoxelCoord::new(15, 15, 15)];
        let seq = SequentialOctree::from_coords(&coords, 4);
        let stream = serialize_occupancy(4, seq.leaf_count(), &seq.occupancy());
        assert_eq!(decode_occupancy(&stream).unwrap(), seq.leaves());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_occupancy(&[0x00, 4, 0]).unwrap_err(), StreamError::BadMagic);
    }

    #[test]
    fn bad_depth_rejected() {
        let stream = serialize_occupancy(22, 0, &[0]);
        assert_eq!(decode_occupancy(&stream).unwrap_err(), StreamError::BadDepth(22));
        let stream = serialize_occupancy(0, 0, &[0]);
        assert_eq!(decode_occupancy(&stream).unwrap_err(), StreamError::BadDepth(0));
    }

    #[test]
    fn truncated_stream_rejected() {
        let tree =
            ParallelOctree::from_coords(&[VoxelCoord::new(1, 2, 3), VoxelCoord::new(7, 0, 2)], 3);
        let full = tree.serialize();
        for cut in 0..full.len() {
            let err = decode_occupancy(&full[..cut]);
            assert!(err.is_err(), "prefix of len {cut} should fail");
        }
    }

    #[test]
    fn leaf_mismatch_detected() {
        let tree = ParallelOctree::from_coords(&[VoxelCoord::new(1, 1, 1)], 2);
        let mut stream = serialize_occupancy(2, 99, &tree.occupancy());
        let err = decode_occupancy(&stream).unwrap_err();
        assert_eq!(err, StreamError::LeafMismatch { declared: 99, decoded: 1 });
        // And a corrupted occupancy byte changes the decoded count.
        stream = tree.serialize();
        let last = stream.len() - 1;
        stream[last] |= 0x80;
        assert!(decode_occupancy(&stream).is_err() || decode_occupancy(&stream).is_ok());
    }

    #[test]
    fn limits_bound_declared_leaves_and_depth() {
        let tree = ParallelOctree::from_coords(&[VoxelCoord::new(1, 1, 1)], 6);
        let stream = tree.serialize();
        // Depth 6 exceeds a max_depth-4 budget.
        let tight = Limits { max_depth: 4, ..Limits::default() };
        assert!(matches!(
            decode_occupancy_with(&stream, &tight).unwrap_err(),
            StreamError::LimitExceeded(e) if e.what == "octree depth"
        ));
        // A header declaring 2^40 leaves is rejected before any expansion.
        let bomb = serialize_occupancy(6, 1 << 40, &[0xff; 6]);
        assert!(matches!(
            decode_occupancy(&bomb).unwrap_err(),
            StreamError::LimitExceeded(e) if e.what == "points"
        ));
        // The default limits accept the legitimate stream unchanged.
        assert_eq!(decode_occupancy(&stream).unwrap(), tree.leaves());
    }

    #[test]
    fn empty_tree_round_trips() {
        let tree = ParallelOctree::from_coords(&[], 5);
        let decoded = decode_occupancy(&tree.serialize()).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn header_parse_exposes_fields() {
        let tree = ParallelOctree::from_coords(&[VoxelCoord::new(1, 1, 1)], 7);
        let stream = tree.serialize();
        let parsed = parse_stream(&stream).unwrap();
        assert_eq!(parsed.depth, 7);
        assert_eq!(parsed.leaf_count, 1);
        assert_eq!(parsed.occupancy.len(), 7);
    }

    proptest! {
        #[test]
        fn geometry_is_lossless_at_voxel_precision(
            coords in prop::collection::vec((0u32..128, 0u32..128, 0u32..128), 0..300)
        ) {
            let coords: Vec<VoxelCoord> =
                coords.into_iter().map(|(x, y, z)| VoxelCoord::new(x, y, z)).collect();
            let tree = ParallelOctree::from_coords(&coords, 7);
            let decoded = decode_occupancy(&tree.serialize()).unwrap();
            prop_assert_eq!(decoded, tree.leaves());
        }
    }
}

//! Octree geometry substrate: sequential and parallel construction.
//!
//! G-PCC-style geometry compression represents the set of occupied voxels
//! as an octree and serializes one *occupancy byte* per internal node
//! (bit *i* set ⇔ child *i* occupied). This crate provides both builders
//! the paper contrasts:
//!
//! - [`SequentialOctree`] — the PCL/TMC13-style baseline that inserts
//!   points one at a time, updating the tree (and, conceptually, a global
//!   lock) per point. It exposes its operation counts so the device model
//!   can charge the true sequential cost.
//! - [`ParallelOctree`] — the proposed Morton-code-driven builder
//!   (Karras-style): sort the codes once, then derive every tree level by
//!   a data-parallel map + compaction, producing the paper's
//!   code/parent arrays; occupancy bytes come from the paper's
//!   Algorithm 1 post-process.
//!
//! Both builders produce *bit-identical* occupancy streams for the same
//! voxel set (a key test invariant), serialized breadth-first by
//! [`serialize_occupancy`] and decoded by [`decode_occupancy`].
//!
//! # Examples
//!
//! ```
//! use pcc_octree::{decode_occupancy, ParallelOctree};
//! use pcc_types::VoxelCoord;
//!
//! let coords = vec![
//!     VoxelCoord::new(0, 0, 0),
//!     VoxelCoord::new(1, 0, 0),
//!     VoxelCoord::new(3, 3, 3),
//! ];
//! let tree = ParallelOctree::from_coords(&coords, 2);
//! let stream = tree.serialize();
//! let decoded = decode_occupancy(&stream).unwrap();
//! let mut sorted = coords.clone();
//! sorted.sort_by_key(|c| pcc_morton::encode(*c));
//! assert_eq!(decoded, sorted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Wire-derived bytes reach this crate: a bare slice index is a latent
// panic on hostile input, so all indexing must be get()-style or carry
// a local, justified allow.
#![deny(clippy::indexing_slicing)]
// Unit tests may index freely: a panic there is a test failure, not a
// reachable fault on wire data.
#![cfg_attr(test, allow(clippy::indexing_slicing))]

mod parallel;
mod sequential;
mod serialize;

pub use parallel::{LevelArrays, ParallelOctree};
pub use sequential::SequentialOctree;
pub use serialize::{
    decode_occupancy, decode_occupancy_with, parse_stream, serialize_occupancy,
    serialize_occupancy_into, OccupancyStream,
    StreamError,
};

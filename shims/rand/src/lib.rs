//! Offline shim for the subset of the [`rand` 0.9](https://docs.rs/rand/0.9)
//! API this workspace uses.
//!
//! The build sandbox has no crates.io access, so the workspace vendors a
//! minimal, dependency-free stand-in instead of the real crate. Only what
//! the repository actually calls is implemented:
//!
//! - [`rngs::SmallRng`] — xoshiro256++ (the same algorithm rand 0.9's
//!   64-bit `SmallRng` uses), seeded via SplitMix64.
//! - [`SeedableRng::seed_from_u64`]
//! - [`Rng::random`], [`Rng::random_range`], [`Rng::random_ratio`]
//!
//! Streams are deterministic for a given seed but are **not** guaranteed
//! to be bit-identical to upstream `rand` (the uniform-range reduction is
//! simpler). Every consumer in this repo seeds explicitly and only relies
//! on determinism, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    /// A small, fast RNG: xoshiro256++.
    ///
    /// Not cryptographically secure. Matches the algorithm behind rand
    /// 0.9's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl super::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion (the standard xoshiro seeding).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng::from_state(s)
        }
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly (`rng.random_range(..)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0` or `numerator > denominator`.
    #[inline]
    fn random_bool_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// `rand 0.9` name for [`random_bool_ratio`](Self::random_bool_ratio).
    #[inline]
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.random_bool_ratio(numerator, denominator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(0..1024);
            assert!(v < 1024);
            let f: f32 = rng.random_range(-50.0..50.0);
            assert!((-50.0..50.0).contains(&f));
            let i: i32 = rng.random_range(-1i32..=1);
            assert!((-1..=1).contains(&i));
            let b: u8 = rng.random_range(1..=255);
            assert!(b >= 1);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ratio_probability_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}

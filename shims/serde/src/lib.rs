//! Offline shim for the slice of `serde` this workspace touches.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on public types
//! (keeping them tagged for downstream users); nothing serializes through
//! serde at runtime. The sandbox has no crates.io access, so this shim
//! re-exports no-op derive macros from the sibling `serde_derive` shim.
//! Swapping the workspace dependency back to real serde requires no
//! source changes.

pub use serde_derive::{Deserialize, Serialize};

//! Offline shim for the subset of [`parking_lot`](https://docs.rs/parking_lot)
//! this workspace uses, backed by `std::sync`.
//!
//! The build sandbox has no crates.io access, so the workspace vendors a
//! minimal facade. Semantics match parking_lot where it matters here:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! not propagated, mirroring parking_lot's absence of poisoning).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (`parking_lot::Mutex` facade).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (`parking_lot::RwLock` facade).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}

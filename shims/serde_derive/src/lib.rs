//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace derives `Serialize`/`Deserialize` to keep its public
//! types serde-ready, but no code path actually serializes through serde
//! (there is no `serde_json` or similar in the dependency set). In the
//! offline build sandbox the real proc-macro stack (syn/quote) is
//! unavailable, so these derives accept the input and emit no impls.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline shim for the subset of the [`proptest` 1.x](https://docs.rs/proptest)
//! API this workspace uses.
//!
//! The build sandbox has no crates.io access, so the workspace vendors a
//! minimal, dependency-free property-testing harness with the same
//! surface syntax:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - range, tuple, [`collection::vec`](prop::collection::vec) and
//!   [`collection::btree_set`](prop::collection::btree_set) strategies,
//! - [`any::<T>()`](prelude::any), [`Strategy::prop_map`],
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via `Debug` where available, but is not minimized), no failure
//! persistence (`proptest-regressions` files are ignored), and the
//! default case count is 64 (override per-test with `proptest_config`
//! or globally with the `PROPTEST_CASES` env var).

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = SmallRng;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Cases actually run: the env var `PROPTEST_CASES` overrides the
    /// configured count when set.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
///
/// This shim's strategies are plain samplers: `Value` is the generated
/// type and [`sample`](Strategy::sample) draws one instance.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive samples", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy ([`prelude::any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for primitives (via `rand`'s `Standard`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for StandardStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random()
    }
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                StandardStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            type Strategy = ($($name::Strategy,)+);
            fn arbitrary() -> Self::Strategy {
                ($($name::arbitrary(),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy combinators namespace (`prop::` in user code).
pub mod prop {
    /// Collection strategies (`prop::collection::*`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Size specification for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange(Range<usize>);

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy produced by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.random_range(self.size.0.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>` with `size` *distinct*
        /// elements (bounded retries; settles for fewer if the element
        /// domain is too small).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size: size.into() }
        }

        /// Strategy produced by [`btree_set`].
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let n = rng.random_range(self.size.0.clone());
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < n && attempts < n * 100 + 100 {
                    out.insert(self.element.sample(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use super::prop;
    pub use super::{Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Outcome of one generated case: `Err` carries the formatted assertion
/// failure from a `prop_assert*!`.
pub type TestCaseResult = Result<(), String>;

#[doc(hidden)]
pub mod runner {
    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    /// Deterministic per-test seed (FNV-1a over the test path).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` for every generated case, panicking on the first
    /// failure with the case index (there is no shrinking).
    pub fn run(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> super::TestCaseResult,
    ) {
        let cases = config.effective_cases();
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        for i in 0..cases {
            if let Err(msg) = case(&mut rng) {
                panic!("proptest case {i}/{cases} of `{name}` failed:\n{msg}");
            }
        }
    }
}

/// Property-based test harness macro; see the crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            #[allow(unused_parens)]
            let strategy = ($($strat),+);
            $crate::runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |rng| {
                    #[allow(unused_parens)]
                    let ($($arg),+) = $crate::Strategy::sample(&strategy, rng);
                    $body
                    Ok(())
                },
            );
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` variant that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` variant that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` variant that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_domain() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = prop::collection::vec((0u32..10, any::<u8>()), 3..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&(a, _)| a < 10));
        }
        let set = prop::collection::btree_set(0u64..1_000_000, 5..6);
        let got = set.sample(&mut rng);
        assert_eq!(got.len(), 5);
    }

    proptest! {
        #[test]
        fn macro_generates_runnable_tests(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn tuple_and_map_strategies(p in (0i32..8, 0i32..8).prop_map(|(a, b)| a * 8 + b)) {
            prop_assert!((0..64).contains(&p));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3 })]
        #[test]
        fn config_cases_accepted(v in prop::collection::vec(0u8..255, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}

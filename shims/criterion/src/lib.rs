//! Offline shim for the subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking API this workspace uses.
//!
//! The build sandbox has no crates.io access, so the workspace vendors a
//! minimal harness with the same surface syntax:
//!
//! - [`Criterion::benchmark_group`] with [`BenchmarkGroup::sample_size`],
//!   [`BenchmarkGroup::throughput`], [`BenchmarkGroup::bench_function`],
//!   [`BenchmarkGroup::bench_with_input`] and [`BenchmarkGroup::finish`],
//! - [`Bencher::iter`],
//! - [`BenchmarkId::new`] / [`BenchmarkId::from_parameter`],
//! - [`Throughput::Elements`] / [`Throughput::Bytes`],
//! - the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from upstream: timing is a simple median over
//! `sample_size` wall-clock samples of one closure invocation each (no
//! warmup phase, no statistical analysis, no HTML reports, no saved
//! baselines), and results print one plain line per benchmark. The shim
//! honours `CRITERION_SAMPLES` to override sample counts globally and
//! runs every registered benchmark unconditionally (CLI filter
//! arguments are ignored). That is enough for `cargo check --benches`
//! and for eyeballing relative kernel cost; the committed perf
//! trajectory lives in `BENCH_hotpath.json`, produced by the dedicated
//! `hotpath` binary, not by these benches.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group; benchmarks registered on the group run
    /// immediately and print one summary line each.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: default_samples(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Work-volume annotation attached to a group, echoed as a rate in the
/// printed summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark label: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self { label: label.to_string() }
    }
}

/// A named collection of related benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.samples = n.max(1);
        }
        self
    }

    /// Attaches a work-volume annotation to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Registers and immediately runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut durations: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut bencher = Bencher { elapsed_ns: 0, iters: 0 };
            f(&mut bencher);
            if bencher.iters > 0 {
                durations.push(bencher.elapsed_ns / bencher.iters as u128);
            }
        }
        durations.sort_unstable();
        let median = durations.get(durations.len() / 2).copied().unwrap_or(0);
        let label = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                let per = median as f64 / n.max(1) as f64;
                println!("bench {label:<48} {median:>12} ns/iter ({per:.2} ns/elem)");
            }
            Some(Throughput::Bytes(n)) if median > 0 => {
                let rate = n as f64 / (median as f64 / 1e9) / 1e6;
                println!("bench {label:<48} {median:>12} ns/iter ({rate:.1} MB/s)");
            }
            _ => println!("bench {label:<48} {median:>12} ns/iter"),
        }
        self
    }

    /// Registers and runs a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; the shim prints as
    /// it goes, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed batch of iterations, accumulating
    /// wall-clock time. The return value is passed through
    /// `std::hint::black_box` so the computation is not optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const BATCH: u64 = 1;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += BATCH;
    }
}

/// Upstream-compatible re-export point: `criterion::black_box` forwards
/// to [`std::hint::black_box`].
pub use std::hint::black_box;

/// Declares a benchmark group: a named runner function invoking each
/// listed target with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_labels() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim/demo");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("enc", 9).label, "enc/9");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}

#!/usr/bin/env bash
# Tier-1 verification gate plus a forced single-thread pass.
#
# The parallel execution layer promises byte-identical output at every
# thread count; running the whole suite twice — once at the machine's
# parallelism, once pinned to one thread via PCC_THREADS — exercises both
# the fan-out and the inline paths of every stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: test suite (default threads) =="
cargo test -q --offline

echo "== single-thread pass (PCC_THREADS=1) =="
PCC_THREADS=1 cargo test -q --offline

echo "== probe-enabled pass (PCC_PROBE=1) =="
# Recording spans must not perturb a single test — same suite, probes on.
PCC_PROBE=1 cargo test -q --offline

echo "== golden vectors =="
cargo test -q --offline --test golden

echo "== probes compile out (no-default-features) =="
cargo check -q --offline -p pcc --no-default-features

echo "== bench targets compile =="
cargo check -q --offline -p pcc-bench --benches

echo "== simd feature matrix =="
# The AVX2 Morton lane path must keep compiling with the feature on and
# off (it is runtime-detected, so one binary serves both hosts), and its
# byte-identity proptests must hold with the lanes actually enabled.
cargo check -q --offline -p pcc-morton
cargo check -q --offline -p pcc-morton --features simd
cargo check -q --offline -p pcc-bench --features simd
cargo test -q --offline -p pcc-morton --features simd

echo "== perf trajectory: hot-path benchmark gate =="
# Re-measures the per-kernel ns/point, steady-state allocs/frame, and
# end-to-end frame latency of BENCH_hotpath.json; any timed metric more
# than 15% over the committed baseline (PCC_BENCH_TOLERANCE overrides),
# or a steady-state frame that starts allocating, fails the gate.
# Re-baseline an intentional change with PCC_BENCH_REFRESH=1.
cargo run -q --release --offline -p pcc-bench --features simd --bin hotpath -- --check

echo "== live streaming over loopback TCP + seeded-loss ARQ legs =="
# The example asserts 12/12 frames delivered in order, a clean shutdown,
# zero drops/resyncs, and a minimum delivered attribute PSNR — then
# replays the clip over a 10%-loss seeded transport and asserts the
# plain receiver drops frames while the ARQ receiver recovers all of
# them bit-exact. The final reconnect leg kills one broadcast
# subscriber's transport mid-stream and asserts resubscribe resumes it
# losslessly on a fresh wire.
cargo run -q --release --offline --example live_stream

echo "== overload soak: degradation ladder, watchdog, panic containment =="
# A supervised session under a scripted 2x encode overload on a
# throttled transport must degrade >=2 rungs, recover to the top rung
# when the load lifts, deliver every I-frame with no gap over one
# frame, and convert an injected worker panic into exactly one skipped
# frame — all on a FakeClock, so the rung traces are asserted exactly.
# With the controller off, output stays byte-identical to stream_video
# (the golden digests above already pin the wire). The ARQ timing suite
# rides along: backoff/deadline sequences replay on the same clock.
cargo test -q --offline --release --test overload_soak --test arq_timing

echo "== broadcast soak: encode-once fan-out to 100+ subscribers =="
# One shared encoder serving 112 heterogeneous subscribers (healthy,
# seeded-lossy, fake-clock-throttled under per-subscriber degradation,
# late joiners replayed from the resync cache, dead transports): exactly
# one encode per frame, healthy wires byte-identical to the 1:1 sender,
# throttled rung traces asserted exactly, late joiners lossless from the
# cached I-frame. The broadcast example (1 source -> 4 viewers) rides
# along with its own assertions.
cargo test -q --offline --release --test broadcast_soak
cargo run -q --release --offline --example broadcast

echo "== chaos soak: recovery plane under seeded faults =="
# The recovery plane replayed deterministically: a dropped I-frame must
# trigger exactly one receiver-driven intra refresh and re-anchor at the
# next slot; a corrupted brick must repair bit-exact from the repair
# ring with no refresh; a dead subscriber must resume losslessly via
# resubscribe with carried-over accounting; a stalled consumer must be
# evicted by the liveness policy and be able to return; and the full
# four-subscriber soak must replay identically from its seed (trace and
# all counters compared exactly).
cargo test -q --offline --release --test chaos_soak

echo "== fuzz smoke: seeded decode-surface mutations =="
# Fixed-seed corpus (no time, no randomness source beyond the seed):
# 10k+ mutated bitstreams through demux / decode_frame /
# decode_occupancy / the chunk receiver must return Ok-or-Err, never
# panic, at both Limits regimes. Run in release so the gate stays fast.
cargo test -q --offline --release --test fuzz_decode

echo "== brick conformance: goldens, determinism, partial decode, fuzz =="
# The brick-partitioned wire format is pinned four ways: golden digests
# (single- and two-layer, thread-count invariant), sequential-vs-parallel
# and probes-on/off decode identity, full decode == concatenation of
# per-brick partial decodes (proptest over random viewports), and 2k+
# seeded mutations of the brick index and payloads under both Limits
# regimes with damaged bricks never corrupting sibling output (the fuzz
# suite already ran in full above; the other binaries run here). The
# decode_brick_ns_per_point metric rides the hotpath gate above.
cargo test -q --offline --release --test golden --test determinism --test stream_transport

echo "== clippy: no unchecked indexing on the decode path =="
# Every crate that parses wire-derived bytes carries
# #![deny(clippy::indexing_slicing)] in its lib.rs — a bare slice index
# is a latent panic on hostile input, so access must be get()-style or
# carry a local, justified allow. This invocation makes the deny fire.
cargo clippy -q --offline \
    -p pcc-types -p pcc-entropy -p pcc-octree -p pcc-intra -p pcc-inter \
    -p pcc-core -p pcc-stream -p pcc-serve -p pcc-fault -p pcc-adapt \
    -p pcc-morton -p pcc-parallel

echo "verify: all gates passed"

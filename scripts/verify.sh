#!/usr/bin/env bash
# Tier-1 verification gate plus a forced single-thread pass.
#
# The parallel execution layer promises byte-identical output at every
# thread count; running the whole suite twice — once at the machine's
# parallelism, once pinned to one thread via PCC_THREADS — exercises both
# the fan-out and the inline paths of every stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: test suite (default threads) =="
cargo test -q --offline

echo "== single-thread pass (PCC_THREADS=1) =="
PCC_THREADS=1 cargo test -q --offline

echo "== probe-enabled pass (PCC_PROBE=1) =="
# Recording spans must not perturb a single test — same suite, probes on.
PCC_PROBE=1 cargo test -q --offline

echo "== golden vectors =="
cargo test -q --offline --test golden

echo "== probes compile out (no-default-features) =="
cargo check -q --offline -p pcc --no-default-features

echo "== bench targets compile =="
cargo check -q --offline -p pcc-bench --benches

echo "== live streaming over loopback TCP =="
# The example asserts 12/12 frames delivered in order, a clean shutdown,
# zero drops/resyncs, and a minimum delivered attribute PSNR.
cargo run -q --release --offline --example live_stream

echo "verify: all gates passed"

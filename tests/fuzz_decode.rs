//! Deterministic decode-surface fuzzing: seeded mutations of real
//! bitstreams (byte flips, truncations, splices, length-field inflation)
//! driven through every public decode entry point. The only acceptable
//! outcomes are `Ok` with a structurally valid result or a typed `Err` —
//! a panic, abort, or limit-busting allocation is a bug.
//!
//! Every mutation is drawn from a fixed-seed [`SmallRng`], so a failure
//! reproduces exactly from the printed iteration number; there is no
//! corpus directory and no time-dependent input.

use std::io::{self, Write};
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::octree::{decode_occupancy_with, ParallelOctree};
use pcc::serve::{Broadcast, SubscriberConfig};
use pcc::stream::{encode_chunk, ChunkKind, ChunkReader, Receiver, Sender, StreamConfig};
use pcc::types::{Limits, Video, VoxelizedCloud};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0xFEED_5EED;

/// A small fixture keeps the happy-path decodes (mutations that land in
/// don't-care bytes) cheap enough for a 10k+ iteration debug-mode run.
fn clip() -> Video {
    catalog::by_name("Longdress").unwrap().generate_scaled(2, 600)
}

fn device(threads: usize) -> Device {
    Device::jetson_agx_xavier(PowerMode::W15).with_host_threads(NonZeroUsize::new(threads))
}

fn max_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies one seeded mutation to a copy of `original`: a burst of bit
/// flips, a truncation, a self-splice (a window copied over another
/// offset — shifts every downstream field), or a length-field inflation
/// (a 4-byte little-endian run saturated to `0xFFFF_FFFF`, the classic
/// "allocate 4 GiB please" attack on wire-declared sizes).
fn mutate(rng: &mut SmallRng, original: &[u8]) -> Vec<u8> {
    let mut bytes = original.to_vec();
    if bytes.is_empty() {
        return bytes;
    }
    match rng.random_range(0..4u32) {
        0 => {
            for _ in 0..rng.random_range(1..=8usize) {
                let pos = rng.random_range(0..bytes.len());
                let bit = rng.random_range(0..8u32);
                if let Some(b) = bytes.get_mut(pos) {
                    *b ^= 1 << bit;
                }
            }
        }
        1 => {
            let keep = rng.random_range(0..bytes.len());
            bytes.truncate(keep);
        }
        2 => {
            let src = rng.random_range(0..bytes.len());
            let dst = rng.random_range(0..bytes.len());
            let len = rng.random_range(1..=32usize).min(bytes.len());
            let window: Vec<u8> = bytes.iter().copied().skip(src).take(len).collect();
            for (i, b) in window.into_iter().enumerate() {
                if let Some(slot) = bytes.get_mut(dst.saturating_add(i)) {
                    *slot = b;
                }
            }
        }
        _ => {
            let pos = rng.random_range(0..bytes.len());
            for i in 0..4usize {
                if let Some(b) = bytes.get_mut(pos.saturating_add(i)) {
                    *b = 0xFF;
                }
            }
        }
    }
    bytes
}

/// Demux + full frame-decode of a mutated container under explicit
/// limits. Success and typed errors are both fine; only panics fail.
fn drive_container(mutated: &[u8], codec: &PccCodec, d: &Device, limits: Limits) {
    let Ok(video) = container::demux_with(mutated, &limits) else {
        return;
    };
    let mut decoder = codec.frame_decoder(d).with_limits(limits);
    for frame in &video.frames {
        if decoder.decode_frame(frame).is_err() {
            break;
        }
    }
}

#[test]
fn mutated_containers_never_panic_demux_or_decode() {
    let video = clip();
    for design in Design::ALL {
        let codec = PccCodec::new(design);
        for threads in [1, max_threads()] {
            let d = device(threads);
            let original = container::mux(&codec.encode_video(&video, 7, &d));
            // Sanity: the unmutated bytes survive both limit regimes.
            drive_container(&original, &codec, &d, Limits::default());
            drive_container(&original, &codec, &d, Limits::strict());
            assert!(container::demux(&original).is_ok());

            let mut rng = SmallRng::seed_from_u64(SEED ^ (design as u64) << 8 ^ threads as u64);
            for _ in 0..650 {
                let mutated = mutate(&mut rng, &original);
                drive_container(&mutated, &codec, &d, Limits::default());
                drive_container(&mutated, &codec, &d, Limits::strict());
            }
        }
    }
}

#[test]
fn mutated_occupancy_streams_never_panic() {
    let video = clip();
    let vox = VoxelizedCloud::from_cloud(&video.frame(0).unwrap().cloud, 7);
    let original = ParallelOctree::from_coords(vox.coords(), 7).serialize();
    assert!(decode_occupancy_with(&original, &Limits::strict()).is_ok());

    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x0C7);
    for _ in 0..2_500 {
        let mutated = mutate(&mut rng, &original);
        // Strict limits also bound the frontier a hostile stream can
        // declare; both regimes must return, not panic.
        let _ = decode_occupancy_with(&mutated, &Limits::strict());
        let _ = decode_occupancy_with(&mutated, &Limits::default());
    }
}

#[test]
fn mutated_brick_frames_never_panic_any_decode_entry_point() {
    use pcc::intra::{IntraCodec, IntraConfig};

    let video = clip();
    let vox = VoxelizedCloud::from_cloud(&video.frame(0).unwrap().cloud, 7);
    let d = device(1);
    let codec = IntraCodec::new(IntraConfig::default().with_bricks(2).with_threads(1));
    let frame = codec.encode(&vox, &d);
    assert!(codec.decode(&frame, &d).is_ok(), "clean brick frame must decode");

    let viewport = vox.grid_box();
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xB71C);
    for iter in 0..2_200u32 {
        let mut mutated = frame.clone();
        // Round-robin the target: the geometry stream (magic, CRC-guarded
        // brick index, per-brick geometry payloads) twice as often as the
        // attribute stream (per-brick attribute payloads).
        if iter % 3 == 2 {
            mutated.attribute = mutate(&mut rng, &frame.attribute);
        } else {
            mutated.geometry = mutate(&mut rng, &frame.geometry);
        }
        for limits in [Limits::default(), Limits::strict()] {
            let _ = codec.decode_with_limits(&mutated, &d, &limits);
            let _ = codec.brick_index(&mutated, &limits);
            let _ = codec.decode_viewport(&mutated, &d, &limits, &viewport);
            let _ = codec.decode_bricks_lossy(&mutated, &d, &limits);
        }
    }
}

#[test]
fn damaged_brick_payloads_never_corrupt_sibling_bricks() {
    use pcc::intra::{IntraCodec, IntraConfig};
    use pcc::types::{Rgb, VoxelCoord};

    let video = clip();
    let vox = VoxelizedCloud::from_cloud(&video.frame(0).unwrap().cloud, 7);
    let d = device(1);
    let limits = Limits::default();
    let codec = IntraCodec::new(IntraConfig::default().with_bricks(2).with_threads(1));
    let frame = codec.encode(&vox, &d);
    let index = codec.brick_index(&frame, &limits).expect("clean index parses");
    assert!(index.len() > 2, "fixture must span several bricks");

    // Clean per-brick reference decodes, in cell order.
    let clean: Vec<(Vec<VoxelCoord>, Vec<Rgb>)> = index
        .entries()
        .iter()
        .map(|entry| {
            let cell = entry.cell;
            let one = codec
                .decode_bricks(&frame, &d, &limits, |e, _| e.cell == cell)
                .expect("clean brick decodes");
            (one.coords().to_vec(), one.colors().to_vec())
        })
        .collect();

    // Payload bytes start where the first brick's geometry payload does;
    // everything before that is the CRC-guarded index (whose damage is
    // total loss by design, exercised in the panic-safety test above).
    let geom_payload_start =
        index.entries().iter().map(|e| e.geom.start).min().expect("non-empty index");

    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x51B1);
    for _ in 0..400 {
        let mut mutated = frame.clone();
        // Flip 1..=6 bits across the two payload regions, never the index.
        for _ in 0..rng.random_range(1..=6usize) {
            let (buf, base) = if rng.random_range(0..2u32) == 0 {
                (&mut mutated.geometry, geom_payload_start)
            } else {
                (&mut mutated.attribute, 0)
            };
            let pos = base + rng.random_range(0..buf.len() - base);
            let bit = rng.random_range(0..8u32);
            buf[pos] ^= 1 << bit;
        }

        let salvage = codec
            .decode_bricks_lossy(&mutated, &d, &limits)
            .expect("an intact index always salvages");
        assert_eq!(salvage.bricks_total, index.len());
        assert!(salvage.bricks_dropped >= 1, "a flipped payload bit must fail its brick CRC");

        // The salvaged cloud must be exactly the clean bricks minus the
        // dropped ones, in cell order: greedy-match each clean brick's
        // block against the remaining output. Blocks of distinct bricks
        // can never collide (their coords live in distinct cells), so a
        // failed match means that brick was dropped — anything left over
        // at the end would be corrupt sibling output.
        let (mut coords, mut colors) = (salvage.cloud.coords(), salvage.cloud.colors());
        let mut skipped = 0usize;
        for (c, k) in &clean {
            if coords.len() >= c.len()
                && &coords[..c.len()] == c.as_slice()
                && &colors[..k.len()] == k.as_slice()
            {
                coords = &coords[c.len()..];
                colors = &colors[k.len()..];
            } else {
                skipped += 1;
            }
        }
        assert!(coords.is_empty(), "salvage emitted bytes matching no clean brick");
        assert!(colors.is_empty());
        assert_eq!(skipped, salvage.bricks_dropped, "drop accounting must match the output");
    }
}

#[test]
fn mutated_chunk_streams_never_panic_the_receiver() {
    let video = clip();
    let d = device(1);
    let codec = PccCodec::new(Design::IntraInterV1);
    let mut tx = Sender::new(&codec, 7, &d, Vec::new(), &StreamConfig::default()).unwrap();
    for frame in video.iter() {
        tx.send_frame(&frame.cloud).unwrap();
    }
    let (original, _) = tx.finish().unwrap();

    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x5717);
    for _ in 0..1_600 {
        let mutated = mutate(&mut rng, &original);
        let mut rx = Receiver::new(mutated.as_slice(), &d);
        // A finite wire must always terminate: clean end, or an error.
        while let Ok(Some(_)) = rx.recv_frame() {}
    }
}

/// Write-capture that outlives the broadcast consuming its writers.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn mutated_resync_replays_never_panic_a_joiner_or_desync_the_room() {
    // A broadcast whose late joiner is served from the resync cache:
    // its wire opens [extended header, cached I3, cached P4, live ...].
    // That replayed prefix is attacker-visible bytes like any other —
    // mutations must never panic the joiner's receiver, and since each
    // subscriber has its own wire, can never touch the rest of the room.
    let video = catalog::by_name("Longdress").unwrap().generate_scaled(5, 600);
    let d = device(1);
    let codec = PccCodec::new(Design::IntraInterV1);
    let mut session = Broadcast::new(&codec, 7, &d, &StreamConfig::default())
        .with_bounding_box(video.bounding_box().unwrap());
    let room = SharedBuf::default();
    session.subscribe(room.clone(), SubscriberConfig::default()).unwrap();
    for frame in video.iter().take(5) {
        session.push_frame(&frame.cloud);
    }
    let joiner = SharedBuf::default();
    session.subscribe(joiner.clone(), SubscriberConfig::default()).unwrap();
    let stats = session.finish();
    assert_eq!(stats.replayed_frames, 2, "the cache must hold [I3, P4]");

    let original = joiner.0.lock().unwrap().clone();
    let mut rx = Receiver::new(original.as_slice(), &d);
    let mut clean = Vec::new();
    while let Some(frame) = rx.recv_frame().unwrap() {
        clean.push(frame);
    }
    assert_eq!(rx.into_stats().frames_dropped, 0, "baseline replay must be lossless");
    assert_eq!(clean.first().map(|f| f.frame_index), Some(3));

    // Locate the replayed I-frame chunk's byte range on the wire so the
    // second loop can concentrate fire on the cached-then-corrupted-I
    // scenario specifically.
    let mut reader = ChunkReader::new(original.as_slice());
    let mut offset = 0usize;
    let mut i_chunk = None;
    while let Some(c) = reader.next_chunk().unwrap() {
        let len = encode_chunk(&c).len();
        if c.kind == ChunkKind::Frame && i_chunk.is_none() {
            i_chunk = Some((offset, len));
        }
        offset += len;
    }
    let (i_start, i_len) = i_chunk.expect("replay must contain the cached I-frame");

    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x10B5);
    for _ in 0..900 {
        // Whole-wire mutations: header, replay, live tail, end chunk.
        let mutated = mutate(&mut rng, &original);
        let mut rx = Receiver::new(mutated.as_slice(), &d);
        while let Ok(Some(_)) = rx.recv_frame() {}
    }
    for _ in 0..900 {
        // Bit flips inside the cached I-frame chunk only: the CRCs must
        // reject it, degrading the joiner (lost GOF) instead of feeding
        // the decoder a wrong picture — and never panicking.
        let mut mutated = original.clone();
        for _ in 0..rng.random_range(1..=4usize) {
            let pos = i_start + rng.random_range(0..i_len);
            let bit = rng.random_range(0..8u32);
            if let Some(b) = mutated.get_mut(pos) {
                *b ^= 1 << bit;
            }
        }
        let mut rx = Receiver::new(mutated.as_slice(), &d);
        let mut delivered = Vec::new();
        while let Ok(Some(frame)) = rx.recv_frame() {
            delivered.push(frame);
        }
        for frame in &delivered {
            let reference = clean
                .iter()
                .find(|c| c.frame_index == frame.frame_index)
                .expect("joiner can only ever see frames the broadcast sent it");
            assert_eq!(
                frame.cloud, reference.cloud,
                "corrupt replay delivered a wrong frame {}",
                frame.frame_index
            );
        }
    }

    // The rest of the room shares no bytes with the joiner's wire: its
    // capture still replays every frame losslessly.
    let room_wire = room.0.lock().unwrap().clone();
    let mut rx = Receiver::new(room_wire.as_slice(), &d);
    let mut seen = 0usize;
    while let Some(_frame) = rx.recv_frame().unwrap() {
        seen += 1;
    }
    assert_eq!(seen, 5);
    assert_eq!(rx.into_stats().frames_dropped, 0);
}

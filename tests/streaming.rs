//! Long-stream integration: IPP chains over many GOFs, quality drift,
//! rate control end-to-end, and decoder state independence.

use pcc::core::{rate, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::metrics::attribute_psnr;
use pcc::types::{FrameKind, VoxelizedCloud};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

#[test]
fn quality_does_not_drift_across_gofs() {
    // 12 frames = 4 IPP groups. P-frames always reference their own
    // I-frame, so late-GOF quality must match early-GOF quality.
    let video = catalog::by_name("Redandblack").unwrap().generate_scaled(12, 2_500);
    let depth = pcc::datasets::density_matched_depth(2_500);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let enc = codec.encode_video(&video, depth, &d);
    let dec = codec.decode_video(&enc, &d).unwrap();

    let bb = video.bounding_box().unwrap();
    let psnr_of = |i: usize| {
        let reference = VoxelizedCloud::from_cloud_in_box(&video.frame(i).unwrap().cloud, depth, &bb)
            .dedup_mean()
            .to_cloud();
        attribute_psnr(&reference, &dec[i]).unwrap()
    };
    // Compare P-frames of the first and last GOF.
    let early = psnr_of(1);
    let late = psnr_of(10);
    assert!(
        (early - late).abs() < 6.0,
        "P-frame quality drifted: GOF0 {early:.1} dB vs GOF3 {late:.1} dB"
    );
}

#[test]
fn ipp_cadence_holds_over_long_streams() {
    let video = catalog::by_name("Loot").unwrap().generate_scaled(9, 800);
    let d = device();
    let enc = PccCodec::new(Design::IntraInterV2).encode_video(&video, 7, &d);
    for (i, frame) in enc.frames.iter().enumerate() {
        let expect = if i % 3 == 0 { FrameKind::Intra } else { FrameKind::Predicted };
        assert_eq!(frame.kind(), expect, "frame {i}");
    }
}

#[test]
fn decoding_twice_gives_identical_results() {
    // The decoder holds no hidden cross-call state.
    let video = catalog::by_name("Phil10").unwrap().generate_scaled(4, 1_200);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let enc = codec.encode_video(&video, 7, &d);
    let a = codec.decode_video(&enc, &d).unwrap();
    let b = codec.decode_video(&enc, &d).unwrap();
    assert_eq!(a, b);
}

#[test]
fn rate_controlled_stream_honors_its_budget_on_unseen_frames() {
    // Pick a threshold on a 3-frame probe, then encode a longer stream:
    // the achieved ratio stays near the target (content is stationary).
    let probe = catalog::by_name("Soldier").unwrap().generate_scaled(3, 2_000);
    let full = catalog::by_name("Soldier").unwrap().generate_scaled(9, 2_000);
    let d = device();
    let target = 4.0;
    let choice =
        rate::threshold_for_ratio(&probe, 7, pcc::inter::InterConfig::v1(), target, &d);
    let codec =
        PccCodec::with_inter_config(pcc::inter::InterConfig::v1().with_threshold(choice.threshold));
    let enc = codec.encode_video(&full, 7, &d);
    let achieved = enc.total_size().compression_ratio(enc.total_raw_bytes());
    assert!(
        achieved > target * 0.85,
        "budget missed: target {target}, achieved {achieved:.2}"
    );
}

#[test]
fn mixed_scale_frames_round_trip() {
    // Frame sizes vary in real captures; the pipeline must not assume a
    // constant point count.
    let spec = catalog::by_name("Longdress").unwrap();
    let mut frames = Vec::new();
    for (i, points) in [800usize, 2_400, 400, 1_600].into_iter().enumerate() {
        let cloud = spec.generator_with_points(points).frame_cloud(i);
        frames.push(pcc::types::Frame::new(cloud, i as f64 * 33.3));
    }
    let video = pcc::types::Video::new("mixed", frames, 30.0);
    let d = device();
    for design in Design::ALL {
        let codec = PccCodec::new(design);
        let enc = codec.encode_video(&video, 7, &d);
        let dec = codec.decode_video(&enc, &d).unwrap_or_else(|e| panic!("{design}: {e}"));
        assert_eq!(dec.len(), 4, "{design}");
    }
}

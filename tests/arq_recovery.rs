//! ARQ acceptance: under deterministic seeded chunk loss, a receiver
//! with a retransmission back channel must deliver every frame bit-exact
//! (the lossless floor), while the plain receiver on the same damaged
//! wire shows GOF drops — and both runs must replay exactly from the
//! same seed.

use std::time::Duration;

use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::fault::{FaultConfig, FaultStats, FaultyTransport, LossyRetransmit};
use pcc::stream::{
    ArqConfig, Receiver, Sender, SharedRing, StreamConfig, StreamStats,
};
use pcc::types::{PointCloud, Video};

const SEED: u64 = 0xC0FFEE;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn clip() -> Video {
    catalog::by_name("Soldier").unwrap().generate_scaled(12, 1_500)
}

/// Test-friendly recovery bounds: no backoff sleeps, ample deadline.
fn arq_config() -> ArqConfig {
    ArqConfig {
        backoff_base: Duration::ZERO,
        deadline: Duration::from_secs(5),
        ..ArqConfig::default()
    }
}

/// Streams `video` through a seeded [`FaultyTransport`], parking every
/// chunk in a fresh ring. Returns the damaged wire, the ring, the
/// sender's stats, and the fault accounting.
fn faulty_wire(
    codec: &PccCodec,
    video: &Video,
    d: &Device,
    cfg: FaultConfig,
    seed: u64,
) -> (Vec<u8>, SharedRing, StreamStats, FaultStats) {
    let ring = SharedRing::new(64);
    let transport = FaultyTransport::new(Vec::new(), cfg, seed);
    let mut sender = Sender::new(codec, 7, d, transport, &StreamConfig::default())
        .unwrap()
        .with_bounding_box(video.bounding_box().unwrap())
        .with_arq(ring.clone());
    for frame in video.iter() {
        sender.send_frame(&frame.cloud).unwrap();
    }
    let (transport, tx) = sender.finish().unwrap();
    let (wire, faults) = transport.into_inner();
    (wire, ring, tx, faults)
}

fn clean_clouds(codec: &PccCodec, video: &Video, d: &Device) -> Vec<PointCloud> {
    let (wire, _, _, faults) =
        faulty_wire(codec, video, d, FaultConfig::default(), SEED);
    assert_eq!(faults.faulted(), 0);
    let mut rx = Receiver::new(wire.as_slice(), d);
    let mut out = Vec::new();
    while let Some(frame) = rx.recv_frame().unwrap() {
        assert_eq!(frame.frame_index, out.len());
        out.push(frame.cloud);
    }
    out
}

/// 10% seeded chunk loss; the stream-header chunk is immune so both
/// receivers measure frame loss, not setup loss.
fn lossy_config() -> FaultConfig {
    FaultConfig { drop: 0.10, immune_prefix: 1, ..FaultConfig::default() }
}

#[test]
fn arq_recovers_to_the_lossless_floor_where_plain_receive_drops_gofs() {
    let video = clip();
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let clean = clean_clouds(&codec, &video, &d);

    let (wire, ring, tx, faults) = faulty_wire(&codec, &video, &d, lossy_config(), SEED);
    assert_eq!(tx.frames_sent, video.len());
    assert!(faults.dropped > 0, "seed {SEED} must actually lose chunks: {faults:?}");

    // Plain receiver: the damaged wire costs real frames.
    let mut plain = Receiver::new(wire.as_slice(), &d);
    let mut plain_delivered = 0usize;
    while let Some(frame) = plain.recv_frame().unwrap() {
        assert_eq!(frame.cloud, clean[frame.frame_index], "plain receive must never show a wrong picture");
        plain_delivered += 1;
    }
    let plain_stats = plain.into_stats();
    assert!(
        plain_stats.frames_dropped > 0,
        "without ARQ this loss pattern must drop frames: {plain_stats:?}"
    );
    assert_eq!(plain_stats.arq_nacks, 0);
    assert_eq!(plain_delivered + plain_stats.frames_dropped, video.len());

    // ARQ receiver on the same wire: every frame comes back bit-exact —
    // equality with the clean run is the lossless PSNR floor.
    let mut arq = Receiver::new(wire.as_slice(), &d).with_arq(ring, arq_config());
    let mut delivered = Vec::new();
    while let Some(frame) = arq.recv_frame().unwrap() {
        delivered.push(frame);
    }
    let arq_stats = arq.into_stats();
    assert_eq!(delivered.len(), video.len(), "ARQ must recover every frame: {arq_stats:?}");
    for (i, frame) in delivered.iter().enumerate() {
        assert_eq!(frame.frame_index, i);
        assert_eq!(frame.cloud, clean[i], "frame {i} not bit-exact after recovery");
    }
    assert_eq!(arq_stats.frames_dropped, 0, "{arq_stats:?}");
    assert!(arq_stats.arq_nacks > 0, "recovery must have NACKed: {arq_stats:?}");
    assert_eq!(
        arq_stats.arq_recovered, faults.dropped,
        "every dropped chunk should be recovered: {arq_stats:?} vs {faults:?}"
    );
    assert_eq!(arq_stats.arq_degraded, 0, "{arq_stats:?}");
    assert!(arq_stats.clean_shutdown);
}

#[test]
fn the_same_seed_replays_the_same_session_exactly() {
    let video = clip();
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);

    let run = || {
        let (wire, ring, _, faults) = faulty_wire(&codec, &video, &d, lossy_config(), SEED);
        let mut rx = Receiver::new(wire.as_slice(), &d).with_arq(ring, arq_config());
        let mut indices = Vec::new();
        while let Some(frame) = rx.recv_frame().unwrap() {
            indices.push(frame.frame_index);
        }
        let stats = rx.into_stats();
        (wire, faults, indices, stats)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "same seed must produce an identical damaged wire");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3, "delivery accounting must replay exactly");
}

#[test]
fn a_lossy_back_channel_burns_retries_but_still_recovers() {
    let video = clip();
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let (wire, ring, _, faults) = faulty_wire(&codec, &video, &d, lossy_config(), SEED);
    assert!(faults.dropped > 0);

    // Three quarters of the retransmissions vanish too; a generous
    // retry budget still gets every chunk through eventually.
    let channel = LossyRetransmit::new(ring, 0.75, SEED ^ 5);
    let cfg = ArqConfig { retry_budget: 16, ..arq_config() };
    let mut rx = Receiver::new(wire.as_slice(), &d).with_arq(channel, cfg);
    let mut delivered = 0usize;
    while let Some(_frame) = rx.recv_frame().unwrap() {
        delivered += 1;
    }
    let stats = rx.into_stats();
    assert_eq!(delivered, video.len(), "budgeted retries should still recover: {stats:?}");
    assert!(
        stats.arq_nacks > stats.arq_recovered,
        "lost retransmissions must show up as extra NACKs: {stats:?}"
    );
}

#[test]
fn gaps_older_than_the_ring_degrade_to_skip_and_resync() {
    let video = clip();
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);

    // A one-chunk ring cannot serve a NACK by the time the gap is seen:
    // the triggering chunk itself has already overwritten the loss.
    let ring = SharedRing::new(1);
    let transport = FaultyTransport::new(Vec::new(), lossy_config(), SEED);
    let mut sender = Sender::new(&codec, 7, &d, transport, &StreamConfig::default())
        .unwrap()
        .with_bounding_box(video.bounding_box().unwrap())
        .with_arq(ring.clone());
    for frame in video.iter() {
        sender.send_frame(&frame.cloud).unwrap();
    }
    let (transport, _) = sender.finish().unwrap();
    let (wire, faults) = transport.into_inner();
    assert!(faults.dropped > 0);

    let cfg = ArqConfig { ring_chunks: 1, ..arq_config() };
    let mut rx = Receiver::new(wire.as_slice(), &d).with_arq(ring, cfg);
    while rx.recv_frame().unwrap().is_some() {}
    let stats = rx.into_stats();
    assert!(
        stats.arq_degraded > 0,
        "unrecoverable gaps must be accounted as degraded: {stats:?}"
    );
    assert!(
        stats.frames_dropped >= faults.dropped,
        "degraded chunks fall back to plain frame loss (an unrecovered \
         I-frame also orphans its GOF's P-frames): {stats:?} vs {faults:?}"
    );
}

//! End-to-end integration tests: every design, full video round trips,
//! quality floors, and the size/quality orderings the paper reports.

use pcc::core::{evaluate, Design, EvalOptions, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::metrics::attribute_psnr;
use pcc::types::{Video, VoxelizedCloud};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn video(name: &str, frames: usize, points: usize) -> Video {
    catalog::by_name(name).expect("Table-I video").generate_scaled(frames, points)
}

#[test]
fn every_design_round_trips_every_dataset_family() {
    let d = device();
    for name in ["Redandblack", "Phil10"] {
        let v = video(name, 4, 1_500);
        for design in Design::ALL {
            let codec = PccCodec::new(design);
            let enc = codec.encode_video(&v, 7, &d);
            let dec = codec
                .decode_video(&enc, &d)
                .unwrap_or_else(|e| panic!("{design} on {name}: {e}"));
            assert_eq!(dec.len(), v.len(), "{design} on {name}");
            for (i, cloud) in dec.iter().enumerate() {
                assert!(!cloud.is_empty(), "{design} {name} frame {i} empty");
            }
        }
    }
}

#[test]
fn decoded_quality_stays_above_floor() {
    let d = device();
    let v = video("Loot", 3, 4_000);
    let depth = pcc::datasets::density_matched_depth(4_000);
    let bb = v.bounding_box().unwrap();
    for design in Design::ALL {
        let codec = PccCodec::new(design);
        let enc = codec.encode_video(&v, depth, &d);
        let dec = codec.decode_video(&enc, &d).unwrap();
        for (i, frame) in v.iter().enumerate() {
            let reference =
                VoxelizedCloud::from_cloud_in_box(&frame.cloud, depth, &bb).dedup_mean().to_cloud();
            let psnr = attribute_psnr(&reference, &dec[i]).unwrap();
            assert!(psnr > 25.0, "{design} frame {i}: attribute PSNR {psnr:.1} dB");
        }
    }
}

#[test]
fn compressed_size_ordering_matches_paper() {
    // Paper Fig. 8c: TMC13 < V2 <= V1 < Intra-only (as % of raw), and all
    // far below raw size.
    let d = device();
    let v = video("Soldier", 6, 6_000);
    let opts = EvalOptions { psnr_frames: 0, ..EvalOptions::default() };
    let pct = |design: Design| {
        evaluate(&PccCodec::new(design), &v, &d, opts).unwrap().percent_of_raw
    };
    let tmc13 = pct(Design::Tmc13);
    let intra = pct(Design::IntraOnly);
    let v1 = pct(Design::IntraInterV1);
    let v2 = pct(Design::IntraInterV2);
    assert!(tmc13 < intra, "TMC13 {tmc13:.1}% should be smallest vs intra {intra:.1}%");
    assert!(v1 < intra, "V1 {v1:.1}% should beat intra-only {intra:.1}%");
    assert!(v2 <= v1, "V2 {v2:.1}% should beat V1 {v1:.1}%");
    assert!(intra < 60.0, "even intra-only compresses well, got {intra:.1}%");
}

#[test]
fn modeled_speedups_match_paper_shape() {
    // Paper Fig. 8a: proposed designs are 1-2 orders of magnitude faster
    // than both baselines; inter adds modest overhead over intra-only.
    let d = device();
    let v = video("Redandblack", 6, 4_000);
    let opts = EvalOptions { psnr_frames: 0, ..EvalOptions::default() };
    let ms = |design: Design| {
        evaluate(&PccCodec::new(design), &v, &d, opts).unwrap().encode_ms
    };
    let tmc13 = ms(Design::Tmc13);
    let cwipc = ms(Design::Cwipc);
    let intra = ms(Design::IntraOnly);
    let v1 = ms(Design::IntraInterV1);
    assert!(tmc13 / intra > 10.0, "intra speedup vs TMC13 only {:.1}x", tmc13 / intra);
    assert!(cwipc / v1 > 10.0, "V1 speedup vs CWIPC only {:.1}x", cwipc / v1);
    assert!(v1 >= intra, "inter should not be faster than intra alone");
}

#[test]
fn energy_savings_match_paper_shape() {
    // Paper Fig. 8b: ≥90% energy saving for the proposed designs.
    let d = device();
    let v = video("Loot", 3, 4_000);
    let opts = EvalOptions { psnr_frames: 0, ..EvalOptions::default() };
    let joules = |design: Design| {
        evaluate(&PccCodec::new(design), &v, &d, opts).unwrap().energy_j
    };
    let tmc13 = joules(Design::Tmc13);
    let intra = joules(Design::IntraOnly);
    let saving = 1.0 - intra / tmc13;
    assert!(saving > 0.85, "energy saving only {:.1}%", saving * 100.0);
}

#[test]
fn quality_ordering_matches_paper() {
    // Paper Fig. 8c PSNRs: TMC13 (55) > Intra-only (48.5) >= V1 (42.4) >= V2 (39.5).
    let d = device();
    let v = video("Longdress", 6, 6_000);
    let psnr = |design: Design| {
        evaluate(&PccCodec::new(design), &v, &d, EvalOptions::default())
            .unwrap()
            .attribute_psnr_db
    };
    let tmc13 = psnr(Design::Tmc13);
    let intra = psnr(Design::IntraOnly);
    let v1 = psnr(Design::IntraInterV1);
    let v2 = psnr(Design::IntraInterV2);
    assert!(tmc13 > intra, "TMC13 {tmc13:.1} vs intra {intra:.1}");
    assert!(intra >= v1 - 0.5, "intra {intra:.1} vs V1 {v1:.1}");
    assert!(v1 >= v2 - 0.5, "V1 {v1:.1} vs V2 {v2:.1}");
}

#[test]
fn reuse_fraction_rises_with_threshold() {
    // Paper Fig. 10b: the knob moves reuse between ~30% and ~80%+.
    let d = device();
    let v = video("Loot", 6, 4_000);
    let opts = EvalOptions { psnr_frames: 0, ..EvalOptions::default() };
    let mut last = -1.0f64;
    for threshold in [50u32, 500, 5_000, 500_000] {
        let codec = PccCodec::with_inter_config(
            pcc::inter::InterConfig::v1().with_threshold(threshold),
        );
        let reuse = evaluate(&codec, &v, &d, opts).unwrap().reuse_fraction.unwrap();
        assert!(reuse >= last, "reuse fell from {last:.2} to {reuse:.2} at {threshold}");
        last = reuse;
    }
    assert!(last > 0.95, "unbounded threshold should reuse nearly all blocks");
}

#[test]
fn decode_latency_is_modeled_near_real_time() {
    // Paper Sec. IV-B3: decode ≈70 ms/frame at full scale. At reduced
    // scale the model scales down; sanity-check it stays well under the
    // baselines' multi-second encode latencies.
    let d = device();
    let v = video("Redandblack", 3, 4_000);
    let opts = EvalOptions { psnr_frames: 0, ..EvalOptions::default() };
    let report = evaluate(&PccCodec::new(Design::IntraInterV1), &v, &d, opts).unwrap();
    assert!(report.decode_ms > 0.0);
    assert!(report.decode_ms < 100.0, "decode modeled {:.1} ms", report.decode_ms);
}

//! Deterministic chaos soak for the recovery plane.
//!
//! Every disruption here is scripted or seeded — record-indexed drops,
//! byte-exact brick corruption, a transport that dies after a fixed
//! number of records, a stall driven by a fake clock, and seeded
//! `FaultyTransport` damage — so every counter, every delivered frame,
//! and the whole composite soak replay identically from the same seed.
//!
//! The invariants under test:
//!
//! * a receiver that loses its reference re-anchors via an
//!   intra-refresh request within one feedback round trip;
//! * a damaged brick I-frame is mended bit-exact from per-brick NACKs
//!   without a desync or a refresh;
//! * a dead broadcast subscriber resumes on a fresh transport with no
//!   frame lost and exact cross-life accounting;
//! * a stalled consumer is evicted by the liveness policy instead of
//!   being served forever, and can come back;
//! * the composite soak replays bit-identically from its seed, with
//!   every transport queue drained (nothing accumulates unboundedly).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pcc::adapt::FakeClock;
use pcc::core::{BrickIndex, EncodedFrame, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::fault::{FaultConfig, FaultyTransport, MortalTransport, ThrottledTransport};
use pcc::inter::InterConfig;
use pcc::serve::{Broadcast, LivenessPolicy, SlotHealth, SubscriberConfig};
use pcc::stream::{
    decode_chunk, encode_chunk, Delivered, Receiver, Sender, SharedRepairRing, SharedStats,
    StreamConfig,
};
use pcc::types::{FrameKind, Limits, Video};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn clip(frames: usize) -> Video {
    catalog::by_name("Loot").unwrap().generate_scaled(frames, 700)
}

fn brick_codec() -> PccCodec {
    let mut cfg = InterConfig::default();
    cfg.intra.brick_depth = 2;
    PccCodec::with_inter_config(cfg)
}

/// An in-memory duplex wire: writes append, reads drain, an empty queue
/// reads 0 bytes (the live-transport "no data yet" a streaming receiver
/// must tolerate). Clones share the queue.
#[derive(Clone, Default)]
struct Pipe(Arc<Mutex<VecDeque<u8>>>);

impl Pipe {
    fn backlog(&self) -> usize {
        self.0.lock().unwrap().len()
    }
}

impl Write for Pipe {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend(buf.iter().copied());
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for Pipe {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut q = self.0.lock().unwrap();
        let n = buf.len().min(q.len());
        for slot in buf.iter_mut().take(n) {
            *slot = q.pop_front().unwrap_or_default();
        }
        Ok(n)
    }
}

/// Drops exactly the write records whose 0-based index is listed
/// (record 0 is the stream header) — a scripted, replayable loss burst.
struct DropRecords<W: Write> {
    inner: W,
    drop: Vec<usize>,
    seen: usize,
}

impl<W: Write> DropRecords<W> {
    fn new(inner: W, drop: Vec<usize>) -> Self {
        DropRecords { inner, drop, seen: 0 }
    }
}

impl<W: Write> Write for DropRecords<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let idx = self.seen;
        self.seen += 1;
        if !self.drop.contains(&idx) {
            self.inner.write_all(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Flips one byte deep inside the payload of one chunk record, then
/// restamps the chunk's payload CRC — so the chunk still demuxes and
/// the damage is only caught by the per-brick CRC, exactly the failure
/// brick repair exists for.
struct CorruptDeep<W: Write> {
    inner: W,
    record: usize,
    payload_pos: usize,
    seen: usize,
}

impl<W: Write> Write for CorruptDeep<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let idx = self.seen;
        self.seen += 1;
        if idx == self.record {
            let mut chunk = decode_chunk(buf).expect("sender emits whole chunks");
            *chunk.payload.get_mut(self.payload_pos).expect("position inside payload") ^= 0xFF;
            self.inner.write_all(&encode_chunk(&chunk))?;
        } else {
            self.inner.write_all(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Drains everything the receiver can currently deliver (a streaming
/// receiver returns `None` when starved, not just when done).
fn poll<R: Read>(rx: &mut Receiver<R>, out: &mut Vec<Delivered>) {
    while let Some(frame) = rx.recv_frame().expect("in-memory wire cannot fail") {
        out.push(frame);
    }
}

#[test]
fn lost_anchor_triggers_refresh_and_re_anchors_at_the_next_slot() {
    let video = clip(9); // IPP period 3: I at 0, 3, 6.
    let d = device();
    let codec = PccCodec::new(pcc::core::Design::IntraInterV1);
    let pipe = Pipe::default();
    let feedback = SharedStats::new();

    // Record 0 is the header; frame f is record f + 1. Drop frame 3 —
    // the second GOF's scheduled I-frame.
    let wire = DropRecords::new(pipe.clone(), vec![4]);
    let mut tx = Sender::new(&codec, 6, &d, wire, &StreamConfig::default())
        .unwrap()
        .with_feedback(feedback.clone());
    let mut rx = Receiver::new(pipe, &d)
        .with_feedback(feedback)
        .with_recovery()
        .with_streaming();

    let mut delivered = Vec::new();
    for frame in video.iter() {
        tx.send_frame(&frame.cloud).unwrap();
        poll(&mut rx, &mut delivered);
    }
    let (_, tx_stats) = tx.finish().unwrap();
    poll(&mut rx, &mut delivered);

    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    // Frame 3 was dropped; frame 4 (a P without its anchor) is
    // undecodable; the refresh request published at the gap re-anchors
    // at the very next slot, 5 — one feedback round trip, not a wait
    // for the scheduled I at 6.
    assert_eq!(indices, vec![0, 1, 2, 5, 6, 7, 8]);
    let refreshed = delivered.iter().find(|f| f.frame_index == 5).unwrap();
    assert_eq!(refreshed.kind, FrameKind::Intra, "slot 5 re-anchors out of schedule");

    let rx_stats = rx.into_stats();
    assert_eq!(rx_stats.refresh_requests, 1, "one desync, one ask");
    assert_eq!(rx_stats.frames_dropped, 2);
    assert!(rx_stats.resyncs >= 1);
    assert!(rx_stats.clean_shutdown);
    assert_eq!(tx_stats.refresh_frames, 1, "the sender booked the forced I-frame");
    assert!(tx_stats.refresh_bytes > 0);
    assert!(tx_stats.refresh_bytes < tx_stats.bytes_sent);
}

#[test]
fn damaged_brick_is_repaired_bit_exact_without_a_refresh() {
    let video = clip(3);
    let d = device();
    let codec = brick_codec();

    // The reference run: same deterministic encode, clean wire.
    let mut clean_tx = Sender::new(&codec, 6, &d, Vec::new(), &StreamConfig::default()).unwrap();
    for frame in video.iter() {
        clean_tx.send_frame(&frame.cloud).unwrap();
    }
    let (clean_wire, _) = clean_tx.finish().unwrap();
    let mut clean_rx = Receiver::new(clean_wire.as_slice(), &d);
    let mut clean = Vec::new();
    poll(&mut clean_rx, &mut clean);
    assert_eq!(clean.len(), 3);

    // Find a byte that lives inside one brick's geometry slice of the
    // I-frame record, via the same deterministic encode.
    let reference = {
        let mut enc = codec.frame_encoder(6, &d);
        enc.encode_frame(&video.frame(0).unwrap().cloud).0
    };
    let EncodedFrame::Intra(rf) = &reference else { panic!("frame 0 is intra") };
    let bricks = BrickIndex::parse(&rf.geometry, &Limits::default()).unwrap();
    let victim = bricks
        .entries()
        .iter()
        .max_by_key(|e| e.geom.len())
        .expect("brick frames have entries");
    let geometry_at = find_subslice(&chunk_payload(&clean_wire, 1), &rf.geometry)
        .expect("record embeds the geometry stream verbatim");

    let ring = SharedRepairRing::new(4);
    let pipe = Pipe::default();
    let feedback = SharedStats::new();
    let wire = CorruptDeep {
        inner: pipe.clone(),
        record: 1, // the I-frame chunk
        payload_pos: geometry_at + victim.geom.start + victim.geom.len() / 2,
        seen: 0,
    };
    let mut tx = Sender::new(&codec, 6, &d, wire, &StreamConfig::default())
        .unwrap()
        .with_repair(ring.clone());
    let mut rx = Receiver::new(pipe, &d)
        .with_feedback(feedback)
        .with_recovery()
        .with_repair(ring)
        .with_streaming();

    let mut delivered = Vec::new();
    for frame in video.iter() {
        tx.send_frame(&frame.cloud).unwrap();
        poll(&mut rx, &mut delivered);
    }
    tx.finish().unwrap();
    poll(&mut rx, &mut delivered);

    assert_eq!(delivered.len(), 3, "repair saves the I-frame and both its P-frames");
    for (got, want) in delivered.iter().zip(&clean) {
        assert_eq!(got.frame_index, want.frame_index);
        assert!(got.partial.is_none(), "repair is whole, not salvage");
        assert_eq!(got.cloud, want.cloud, "frame {} must be bit-exact", got.frame_index);
    }
    let stats = rx.into_stats();
    assert!(stats.brick_nacks >= 1, "the damaged cell was NACKed");
    assert_eq!(stats.frames_repaired, 1);
    assert!(stats.bricks_repaired >= 1);
    assert_eq!(stats.frames_dropped, 0);
    assert_eq!(stats.refresh_requests, 0, "brick repair made a whole-frame refresh unnecessary");
    assert_eq!(stats.repairs_failed, 0);
}

#[test]
fn dead_subscriber_resumes_losslessly_on_a_fresh_transport() {
    let video = clip(9);
    let d = device();
    let codec = PccCodec::new(pcc::core::Design::IntraInterV1);
    let mut session = Broadcast::new(&codec, 6, &d, &StreamConfig::default());

    let healthy_pipe = Pipe::default();
    let _healthy = session.subscribe(healthy_pipe.clone(), SubscriberConfig::default()).unwrap();
    let mut healthy_rx = Receiver::new(healthy_pipe, &d).with_streaming();
    let mut healthy_frames = Vec::new();

    // Lives: header + frames 0..2; the write for frame 3 dies.
    let first_pipe = Pipe::default();
    let doomed =
        session.subscribe(MortalTransport::new(first_pipe.clone(), 4), SubscriberConfig::default())
            .unwrap();
    let mut first_rx = Receiver::new(first_pipe, &d).with_streaming();
    let mut first_frames = Vec::new();

    for frame in video.iter().take(4) {
        session.push_frame(&frame.cloud);
        poll(&mut healthy_rx, &mut healthy_frames);
        poll(&mut first_rx, &mut first_frames);
    }
    assert!(!session.is_alive(doomed));
    assert_eq!(
        session.subscriber_health(doomed),
        Some(SlotHealth::Failed { at_frame: 3 }),
        "the failure records which frame's send died"
    );

    let second_pipe = Pipe::default();
    assert!(session.resubscribe(doomed, second_pipe.clone()).unwrap());
    assert!(session.is_alive(doomed));
    assert_eq!(session.subscriber_health(doomed), Some(SlotHealth::Live));
    // Resubscribing a live slot would fork its stream: refused.
    assert!(!session.resubscribe(doomed, Pipe::default()).unwrap());
    let mut second_rx = Receiver::new(second_pipe, &d).with_streaming();
    let mut second_frames = Vec::new();

    for frame in video.iter().skip(4) {
        session.push_frame(&frame.cloud);
        poll(&mut healthy_rx, &mut healthy_frames);
        poll(&mut second_rx, &mut second_frames);
    }
    let doomed_total = session.subscriber_stats(doomed).unwrap().clone();
    let stats = session.finish();
    poll(&mut healthy_rx, &mut healthy_frames);
    poll(&mut second_rx, &mut second_frames);

    assert_eq!(stats.resubscribes, 1);
    assert_eq!(stats.subscribers_failed, 1);
    assert_eq!(stats.subscribers_active(), 2);

    // Across both lives the subscriber saw every frame exactly once:
    // 0..2 on the first wire, then the cached GOF anchor (frame 3, the
    // I-frame whose send died) replayed on the second wire, then 4..8.
    let first: Vec<usize> = first_frames.iter().map(|f| f.frame_index).collect();
    let second: Vec<usize> = second_frames.iter().map(|f| f.frame_index).collect();
    assert_eq!(first, vec![0, 1, 2]);
    assert_eq!(second, vec![3, 4, 5, 6, 7, 8]);
    assert!(healthy_rx.stats().clean_shutdown);
    assert!(second_rx.stats().clean_shutdown, "the resumed wire gets a real end chunk");

    // Bit-exact convergence: the resumed subscriber decodes exactly
    // what the survivor decodes.
    let all: Vec<usize> = healthy_frames.iter().map(|f| f.frame_index).collect();
    assert_eq!(all, (0..9).collect::<Vec<_>>());
    for frame in &second_frames {
        let twin = healthy_frames.iter().find(|f| f.frame_index == frame.frame_index).unwrap();
        assert_eq!(frame.cloud, twin.cloud);
    }

    // Cross-life accounting: counters carried over, frame 3 counted
    // once (its failed send was never booked, its replay was).
    assert_eq!(doomed_total.frames_sent, 9);
    assert!(doomed_total.bytes_sent > 0);
}

#[test]
fn stalled_consumer_is_evicted_by_liveness_and_can_return() {
    let video = clip(6);
    let d = device();
    let codec = PccCodec::new(pcc::core::Design::IntraInterV1);
    let policy = LivenessPolicy { send_deadline: Duration::from_millis(10), max_misses: 2 };
    let mut session = Broadcast::new(&codec, 6, &d, &StreamConfig::default()).with_liveness(policy);

    let fast_clock = FakeClock::new();
    let fast = session
        .subscribe(
            Pipe::default(),
            SubscriberConfig { clock: Some(Arc::new(fast_clock)), ..Default::default() },
        )
        .unwrap();

    // ~1 ms of fake-clock time per byte: every send blows the 10 ms
    // deadline by orders of magnitude, but only on this slot's clock.
    let slow_clock = FakeClock::new();
    let stalled_pipe = Pipe::default();
    let stalled = session
        .subscribe(
            ThrottledTransport::new(stalled_pipe, Arc::new(slow_clock.clone()), 1_000_000),
            SubscriberConfig { clock: Some(Arc::new(slow_clock)), ..Default::default() },
        )
        .unwrap();

    session.push_frame(&video.frame(0).unwrap().cloud);
    assert!(session.is_alive(stalled), "one miss is not an eviction");
    session.push_frame(&video.frame(1).unwrap().cloud);
    assert!(!session.is_alive(stalled));
    assert_eq!(
        session.subscriber_health(stalled),
        Some(SlotHealth::Evicted { at_frame: 1 }),
        "two consecutive misses evict, recording where"
    );
    assert!(session.is_alive(fast), "the deadline is per slot, not per session");
    assert_eq!(session.subscriber_count(), 1);

    // The wire got fixed: resume on an unthrottled transport. The
    // retained slot clock sees instant sends, so the slot stays live.
    assert!(session.resubscribe(stalled, Pipe::default()).unwrap());
    for frame in video.iter().skip(2) {
        session.push_frame(&frame.cloud);
    }
    assert!(session.is_alive(stalled));
    let stats = session.finish();
    assert_eq!(stats.subscribers_evicted, 1);
    assert_eq!(stats.resubscribes, 1);
    assert_eq!(stats.subscribers_failed, 0, "eviction is policy, not transport failure");
    assert_eq!(stats.subscribers_active(), 2);
}

/// One composite soak: brick codec, repair ring, seeded lossy wire with
/// receiver-driven refresh, a mid-GOF transport death with resume, and
/// a fake-clock-stalled consumer that gets evicted. Returns a full
/// digest of everything observable: per-receiver delivery traces, both
/// recovery receivers' counters, and the session counters (timing
/// fields are excluded by `StreamStats`'s counters-only equality).
fn soak(seed: u64) -> (String, pcc::stream::StreamStats, pcc::stream::StreamStats, pcc::serve::ServeStats) {
    let video = clip(12);
    let d = device();
    let codec = brick_codec();
    let ring = SharedRepairRing::new(4);
    let policy = LivenessPolicy { send_deadline: Duration::from_millis(10), max_misses: 2 };
    let mut session = Broadcast::new(&codec, 6, &d, &StreamConfig::default())
        .with_repair(ring.clone())
        .with_liveness(policy);

    // Subscriber A: healthy wire, full recovery wiring.
    let a_pipe = Pipe::default();
    let a_fb = SharedStats::new();
    let _a = session
        .subscribe(
            a_pipe.clone(),
            SubscriberConfig { feedback: Some(a_fb.clone()), ..Default::default() },
        )
        .unwrap();
    let mut a_rx = Receiver::new(a_pipe.clone(), &d)
        .with_feedback(a_fb)
        .with_recovery()
        .with_repair(ring.clone())
        .with_streaming();
    let mut a_frames = Vec::new();

    // Subscriber B: seeded drop/corrupt damage; its receiver asks for
    // refreshes, which re-anchor the shared encode for everyone.
    let b_pipe = Pipe::default();
    let b_fb = SharedStats::new();
    let fault_cfg = FaultConfig {
        drop: 0.2,
        corrupt: 0.2,
        immune_prefix: 1,
        ..FaultConfig::default()
    };
    session
        .subscribe(
            FaultyTransport::new(b_pipe.clone(), fault_cfg, seed),
            SubscriberConfig { feedback: Some(b_fb.clone()), ..Default::default() },
        )
        .unwrap();
    let mut b_rx = Receiver::new(b_pipe.clone(), &d)
        .with_feedback(b_fb)
        .with_recovery()
        .with_repair(ring.clone())
        .with_streaming();
    let mut b_frames = Vec::new();

    // Subscriber C: dies mid-GOF (header + 4 frames), then resumes.
    let c_pipe = Pipe::default();
    let c = session
        .subscribe(MortalTransport::new(c_pipe.clone(), 5), SubscriberConfig::default())
        .unwrap();
    let mut c_rx = Receiver::new(c_pipe.clone(), &d).with_streaming();
    let mut c_frames = Vec::new();
    let mut c_second: Option<(Receiver<Pipe>, Pipe)> = None;

    // Subscriber D: stalled on its own fake clock until evicted.
    let d_clock = FakeClock::new();
    let d_id = session
        .subscribe(
            ThrottledTransport::new(Pipe::default(), Arc::new(d_clock.clone()), 1_000_000),
            SubscriberConfig { clock: Some(Arc::new(d_clock)), ..Default::default() },
        )
        .unwrap();

    for (i, frame) in video.iter().enumerate() {
        session.push_frame(&frame.cloud);
        poll(&mut a_rx, &mut a_frames);
        poll(&mut b_rx, &mut b_frames);
        if let Some((rx, _)) = c_second.as_mut() {
            poll(rx, &mut c_frames);
        } else {
            poll(&mut c_rx, &mut c_frames);
            if !session.is_alive(c) {
                // Reconnect storm survivor: one resume, same identity.
                let pipe = Pipe::default();
                assert!(session.resubscribe(c, pipe.clone()).unwrap());
                let rx = Receiver::new(pipe.clone(), &d).with_streaming();
                c_second = Some((rx, pipe));
            }
        }
        assert!(i < 2 || !session.is_alive(d_id), "the stalled slot must be evicted early");
    }
    let stats = session.finish();
    poll(&mut a_rx, &mut a_frames);
    poll(&mut b_rx, &mut b_frames);
    if let Some((rx, _)) = c_second.as_mut() {
        poll(rx, &mut c_frames);
    }

    // Invariants that must hold for any seed.
    assert_eq!(stats.frames_encoded, 12);
    assert_eq!(stats.subscribers_evicted, 1);
    assert!(stats.resubscribes <= 1);
    let a_indices: Vec<usize> = a_frames.iter().map(|f| f.frame_index).collect();
    assert_eq!(a_indices, (0..12).collect::<Vec<_>>(), "the healthy subscriber misses nothing");
    // Convergence: every whole frame B or C delivered decodes exactly
    // as A decoded it — one shared encode, bit-exact fan-out.
    for frame in b_frames.iter().chain(&c_frames) {
        if frame.partial.is_some() {
            continue;
        }
        let twin = a_frames.iter().find(|f| f.frame_index == frame.frame_index).unwrap();
        assert_eq!(frame.cloud, twin.cloud, "frame {} diverged", frame.frame_index);
    }
    // No unbounded queues: every wire was drained to its last byte.
    assert_eq!(a_pipe.backlog(), 0);
    assert_eq!(b_pipe.backlog(), 0);
    assert_eq!(c_pipe.backlog(), 0);
    if let Some((_, pipe)) = &c_second {
        assert_eq!(pipe.backlog(), 0);
    }
    // Stats arithmetic stays exact under chaos: C's death and resume
    // are record-scheduled, D's eviction is clock-scheduled, so the
    // audience ledger is fully determined for any seed.
    assert_eq!(stats.subscribers_failed, 1, "exactly C's transport died");
    assert_eq!(stats.resubscribes, 1);
    assert_eq!(stats.subscribers_active(), 3, "A, B, and the resumed C remain");

    let digest_frames = |frames: &[Delivered]| -> Vec<(usize, u8, usize, bool)> {
        frames
            .iter()
            .map(|f| {
                (
                    f.frame_index,
                    if f.kind == FrameKind::Intra { 0 } else { 1 },
                    f.cloud.len(),
                    f.partial.is_some(),
                )
            })
            .collect()
    };
    let trace = format!(
        "a={:?} b={:?} c={:?}",
        digest_frames(&a_frames),
        digest_frames(&b_frames),
        digest_frames(&c_frames),
    );
    (trace, a_rx.into_stats(), b_rx.into_stats(), stats)
}

#[test]
fn chaos_soak_replays_identically_from_its_seed() {
    let first = soak(0xC0FFEE);
    let second = soak(0xC0FFEE);
    assert_eq!(first.0, second.0, "same seed must replay the delivery traces bit-identically");
    assert_eq!(first.1, second.1, "healthy receiver counters must replay");
    assert_eq!(first.2, second.2, "lossy receiver counters must replay");
    assert_eq!(first.3, second.3, "session counters must replay");
}

/// Extracts the payload of the `n`-th chunk on a clean wire.
fn chunk_payload(wire: &[u8], n: usize) -> Vec<u8> {
    let mut reader = pcc::stream::ChunkReader::new(wire);
    for _ in 0..n {
        reader.next_chunk().expect("clean wire").expect("enough chunks");
    }
    reader.next_chunk().expect("clean wire").expect("enough chunks").payload
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

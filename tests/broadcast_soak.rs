//! Broadcast soak: one shared encoder serving 100+ heterogeneous
//! subscribers — healthy sinks, seeded-lossy wires, fake-clock-throttled
//! wires under per-subscriber degradation, late joiners resynced from
//! the GOF cache, and transports that die mid-session.
//!
//! Everything is deterministic: loss comes from seeded
//! `FaultyTransport`s, send timing from a `FakeClock` the throttled
//! transports charge, and the degradation controllers are pure functions
//! of their observations — so rung traces and every counter are asserted
//! exactly.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use pcc::adapt::{Controller, ControllerConfig, FakeClock, QualityLadder};
use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::fault::{FaultConfig, FaultyTransport, ThrottledTransport};
use pcc::inter::InterConfig;
use pcc::serve::{Broadcast, SubscriberConfig, SubscriberId};
use pcc::stream::{ChunkKind, ChunkReader, Delivered, Receiver, Sender, StreamConfig, StreamStats};
use pcc::types::Video;

const FRAMES: usize = 12; // 4 IPP groups: I at 0, 3, 6, 9.
const HEALTHY: usize = 40;
const LOSSY: usize = 40;
const THROTTLED: usize = 20;
const LATE: usize = 10;
const DOOMED: usize = 2;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn clip() -> Video {
    catalog::by_name("Loot").unwrap().generate_scaled(FRAMES, 700)
}

/// A transport whose bytes outlive the broadcast (which consumes its
/// writers): every clone appends to the same capture buffer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Accepts exactly one write (the stream header), then the connection
/// "dies": every later write fails.
#[derive(Default)]
struct DeadAfterHeader {
    writes: usize,
}

impl Write for DeadAfterHeader {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writes += 1;
        if self.writes > 1 {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"));
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn receive_all(wire: &[u8], d: &Device) -> (Vec<Delivered>, StreamStats) {
    let mut rx = Receiver::new(wire, d);
    let mut out = Vec::new();
    while let Some(frame) = rx.recv_frame().expect("in-memory transport cannot fail") {
        out.push(frame);
    }
    (out, rx.into_stats())
}

/// A controller whose every observed frame overloads (the throttled
/// wire charges far more fake-clock time than the budget), stepping
/// down one rung per GOF: trace [(3,1), (6,2), (9,3)].
fn slow_subscriber_controller() -> Controller {
    Controller::new(
        QualityLadder::standard(InterConfig::v1()),
        ControllerConfig {
            frame_budget_ms: 1.0,
            degrade_after: 3,
            upgrade_after: 100,
            headroom: 0.9,
        },
    )
}

#[test]
fn broadcast_serves_a_hundred_heterogeneous_subscribers_from_one_encode() {
    let video = clip();
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let bb = video.bounding_box().unwrap();
    let config = StreamConfig::default();

    // Reference: the existing 1:1 sender over the same clip. Healthy
    // broadcast subscribers must reproduce this wire bit for bit.
    let mut solo = Sender::new(&codec, 6, &d, Vec::new(), &config).unwrap().with_bounding_box(bb);
    for frame in video.iter() {
        solo.send_frame(&frame.cloud).unwrap();
    }
    let (ref_wire, ref_tx) = solo.finish().unwrap();
    assert_eq!(ref_tx.frames_sent, FRAMES);
    let (clean, _) = receive_all(&ref_wire, &d);
    assert_eq!(clean.len(), FRAMES);

    let mut session = Broadcast::new(&codec, 6, &d, &config).with_bounding_box(bb);

    let mut healthy: Vec<(SubscriberId, SharedBuf)> = Vec::new();
    for _ in 0..HEALTHY {
        let buf = SharedBuf::default();
        let id = session.subscribe(buf.clone(), SubscriberConfig::default()).unwrap();
        healthy.push((id, buf));
    }

    let mut lossy: Vec<SharedBuf> = Vec::new();
    for i in 0..LOSSY {
        let buf = SharedBuf::default();
        let faults = FaultConfig {
            drop: 0.08,
            corrupt: 0.05,
            immune_prefix: 1,
            ..FaultConfig::default()
        };
        let transport = FaultyTransport::new(buf.clone(), faults, 0xB0A5 + i as u64);
        session.subscribe(transport, SubscriberConfig::default()).unwrap();
        lossy.push(buf);
    }

    // ~10 µs of fake-clock time per byte: the wire is hopelessly slower
    // than the 1 ms budget, so every sent frame overloads the controller.
    let clock = FakeClock::new();
    let mut throttled: Vec<(SubscriberId, SharedBuf)> = Vec::new();
    for _ in 0..THROTTLED {
        let buf = SharedBuf::default();
        let transport = ThrottledTransport::new(buf.clone(), Arc::new(clock.clone()), 10_000);
        let id = session
            .subscribe(
                transport,
                SubscriberConfig {
                    controller: Some(slow_subscriber_controller()),
                    clock: Some(Arc::new(clock.clone())),
                    ..SubscriberConfig::default()
                },
            )
            .unwrap();
        throttled.push((id, buf));
    }

    for _ in 0..DOOMED {
        session.subscribe(DeadAfterHeader::default(), SubscriberConfig::default()).unwrap();
    }

    // First five frames (GOF 0 and the start of GOF 1) go out live...
    for frame in video.iter().take(5) {
        session.push_frame(&frame.cloud);
    }
    // ...then late joiners attach mid-GOF. The cache replays [I3, P4],
    // so each starts bit-exact at frame 3 without waiting for I6.
    let mut late: Vec<SharedBuf> = Vec::new();
    for _ in 0..LATE {
        let buf = SharedBuf::default();
        session.subscribe(buf.clone(), SubscriberConfig::default()).unwrap();
        late.push(buf);
    }
    for frame in video.iter().skip(5) {
        session.push_frame(&frame.cloud);
    }
    assert_eq!(session.frame_index(), FRAMES);

    // Slow subscribers degrade per their own controller trace, one rung
    // per GOF, each landing on an I-frame.
    for (id, _) in &throttled {
        assert_eq!(
            session.controller_trace(*id).unwrap(),
            &[(3, 1), (6, 2), (9, 3)],
            "throttled subscriber walked an unexpected rung trace"
        );
    }
    assert_eq!(session.subscriber_count(), HEALTHY + LOSSY + THROTTLED + LATE);

    let stats = session.finish();

    // The tentpole claim: the audience never multiplied the encode.
    assert_eq!(stats.frames_encoded, FRAMES as u64, "exactly one encode per pushed frame");
    assert_eq!(stats.subscribers_joined, HEALTHY + LOSSY + THROTTLED + LATE + DOOMED);
    assert_eq!(stats.subscribers_failed, DOOMED);
    assert_eq!(stats.late_joins, LATE);
    assert_eq!(stats.replayed_frames, 2 * LATE, "each late joiner replays [I3, P4]");
    // Rung 2 strips I6 and I9; rung 3 additionally strides out P11.
    assert_eq!(stats.sheds_refinement, 2 * THROTTLED);
    assert_eq!(stats.sheds_p_stride, THROTTLED);
    assert_eq!(stats.aggregate.rung_changes, 3 * THROTTLED);
    let expected_sent = (HEALTHY + LOSSY) * FRAMES // full streams
        + THROTTLED * (FRAMES - 1) // P11 withheld
        + LATE * (2 + FRAMES - 5); // replayed [I3, P4] + live 5..12
    assert_eq!(stats.aggregate.frames_sent, expected_sent);
    assert!(stats.fanout_ratio() > 100.0, "fan-out ratio: {}", stats.fanout_ratio());

    // Healthy subscribers: byte-identical to the 1:1 sender — the shared
    // payload bytes, CRCs and sequence numbering all line up.
    for (i, (_, buf)) in healthy.iter().enumerate() {
        assert_eq!(buf.take(), ref_wire, "healthy subscriber {i} wire diverged");
    }
    let (delivered, rx) = receive_all(&healthy[0].1.take(), &d);
    assert_eq!(delivered.len(), FRAMES);
    assert_eq!(rx.frames_dropped, 0);
    assert!(rx.clean_shutdown);

    // Lossy subscribers: seeded chunk loss/corruption costs them frames
    // but never a panic or a wrong picture — and (proven by the healthy
    // byte-equality above) never leaks into anyone else's stream.
    let mut total_lossy_drops = 0usize;
    for buf in &lossy {
        let (delivered, rx) = receive_all(&buf.take(), &d);
        total_lossy_drops += rx.frames_dropped;
        for frame in &delivered {
            assert_eq!(
                frame.cloud, clean[frame.frame_index].cloud,
                "lossy subscriber delivered a wrong frame {}",
                frame.frame_index
            );
        }
    }
    assert!(total_lossy_drops > 0, "seeded loss should cost at least one frame somewhere");

    // Throttled subscribers: frames 0..6 arrive at full quality, the
    // stripped I6/I9 (and P-frames decoded against them) keep geometry
    // but coarsen colors, and P11 never arrives.
    for (_, buf) in &throttled {
        let (delivered, rx) = receive_all(&buf.take(), &d);
        let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
        let expected: Vec<usize> = (0..FRAMES).filter(|&i| i != 11).collect();
        assert_eq!(indices, expected, "stride must withhold exactly P11");
        assert_eq!(rx.frames_dropped, 1, "the strided frame is the only loss");
        assert_eq!(rx.resyncs, 0, "degradation must never desync");
        assert!(rx.clean_shutdown);
        for frame in &delivered {
            let reference = &clean[frame.frame_index].cloud;
            if frame.frame_index < 6 {
                assert_eq!(&frame.cloud, reference, "frame {} predates rung 2", frame.frame_index);
            } else {
                assert_eq!(frame.cloud.len(), reference.len());
                assert_eq!(
                    frame.cloud.positions(),
                    reference.positions(),
                    "shedding the refinement layer must not move geometry (frame {})",
                    frame.frame_index
                );
            }
        }
    }

    // Late joiners: zero booked loss (the announced join point excludes
    // frames 0..3 from accounting) and bit-exact delivery from the
    // cached I3 onward.
    for (i, buf) in late.iter().enumerate() {
        let wire = buf.take();
        let (delivered, rx) = receive_all(&wire, &d);
        assert_eq!(rx.frames_dropped, 0, "late joiner {i} booked pre-join frames as loss: {rx:?}");
        assert_eq!(rx.resyncs, 0);
        assert!(rx.clean_shutdown);
        let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
        let expected: Vec<usize> = (3..FRAMES).collect();
        assert_eq!(indices, expected, "late joiner {i} must start at the cached I-frame");
        for frame in &delivered {
            assert_eq!(
                frame.cloud, clean[frame.frame_index].cloud,
                "late joiner {i} frame {} diverged",
                frame.frame_index
            );
        }
    }

    // Bit-exactness of the replay, at the chunk level: every frame chunk
    // a joiner got carries the identical payload bytes the 1:1 sender
    // put on its wire for that frame (only seq numbering differs).
    let payloads_of = |wire: &[u8]| -> Vec<(u32, Vec<u8>)> {
        let mut reader = ChunkReader::new(wire);
        let mut out = Vec::new();
        while let Some(c) = reader.next_chunk().unwrap() {
            if c.kind == ChunkKind::Frame {
                out.push((c.frame_index, c.payload));
            }
        }
        out
    };
    let ref_payloads = payloads_of(&ref_wire);
    for (frame_index, payload) in payloads_of(&late[0].take()) {
        let reference = ref_payloads
            .iter()
            .find(|(i, _)| *i == frame_index)
            .map(|(_, p)| p)
            .expect("joiner frame must exist on the reference wire");
        assert_eq!(&payload, reference, "replayed frame {frame_index} payload diverged");
    }
}

/// A broadcast with zero subscribers is legal (everyone left, or nobody
/// arrived yet): frames still encode, the cache still warms, and a
/// subscriber arriving afterwards is served from it.
#[test]
fn an_audience_of_zero_still_warms_the_resync_cache() {
    let video = clip();
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let mut session =
        Broadcast::new(&codec, 6, &d, &StreamConfig::default()).with_bounding_box(video.bounding_box().unwrap());

    for frame in video.iter().take(4) {
        session.push_frame(&frame.cloud);
    }
    let buf = SharedBuf::default();
    session.subscribe(buf.clone(), SubscriberConfig::default()).unwrap();
    for frame in video.iter().skip(4) {
        session.push_frame(&frame.cloud);
    }
    let stats = session.finish();
    assert_eq!(stats.frames_encoded, FRAMES as u64);
    assert_eq!(stats.late_joins, 1);

    let (delivered, rx) = receive_all(&buf.take(), &d);
    assert_eq!(rx.frames_dropped, 0, "{rx:?}");
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    let expected: Vec<usize> = (3..FRAMES).collect();
    assert_eq!(indices, expected);
    assert!(delivered.iter().all(|f| !f.cloud.is_empty()));
}

//! Property-based coverage for the rate controller and the session
//! planner: the threshold search must be monotone in the target ratio,
//! and any feasible session plan must actually fit the link it was
//! planned for. Case counts are deliberately tiny — every case costs a
//! full bisection (≈22 probe encodes).

use pcc::core::rate;
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::inter::InterConfig;
use pcc::stream::plan_session;
use pcc::types::Video;
use proptest::prelude::*;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

/// A small deterministic probe clip (rate searches re-encode it ~22×
/// per case, so keep it cheap).
fn probe() -> Video {
    catalog::by_name("Loot").unwrap().generate_scaled(2, 600)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// A stricter size target can never be met by a *smaller* reuse
    /// threshold: `threshold_for_ratio` is monotone non-decreasing in the
    /// target ratio (the knob the paper calls tunable in Sec. VI-E).
    #[test]
    fn threshold_search_is_monotone_in_target(
        lo_target in 1.0f64..5.0,
        step in 0.25f64..2.5,
    ) {
        let video = probe();
        let d = device();
        let hi_target = lo_target + step;
        let lo = rate::threshold_for_ratio(&video, 6, InterConfig::v1(), lo_target, &d);
        let hi = rate::threshold_for_ratio(&video, 6, InterConfig::v1(), hi_target, &d);
        prop_assert!(
            lo.threshold <= hi.threshold,
            "target {lo_target:.2} chose threshold {} but stricter target {hi_target:.2} \
             chose smaller threshold {}",
            lo.threshold,
            hi.threshold,
        );
        // The search never reports an achieved ratio below the target
        // unless it saturated the knob entirely.
        prop_assert!(
            lo.achieved_ratio >= lo_target || lo.threshold == 1 << 20,
            "unsaturated search under-achieved: {lo:?}"
        );
    }

    /// Whenever the planner reaches its target ratio, the resulting plan
    /// must fit the stated link budget in *wire* bytes — mux overhead and
    /// all. (This is the contract MUX_OVERHEAD_BYTES in plan.rs exists
    /// to uphold.)
    #[test]
    fn feasible_plans_fit_the_stated_link(
        demanded_ratio in 0.5f64..7.0,
        fps in 10.0f64..60.0,
    ) {
        let video = probe();
        let d = device();
        let raw_bpf = (video.mean_points_per_frame() * pcc::types::RAW_BYTES_PER_POINT) as f64;
        let link_kbps = raw_bpf * 8.0 * fps / 1000.0 / demanded_ratio;
        let plan = plan_session(&video, 6, InterConfig::v1(), fps, link_kbps, &d);

        prop_assert!((plan.frame_budget_ms - 1000.0 / fps).abs() < 1e-9);
        prop_assert!(plan.rate_probes >= 1);
        if plan.achieved_ratio >= plan.target_ratio {
            prop_assert!(
                plan.fits_bandwidth(),
                "achieved {:.3} >= target {:.3} but {:.1} wire bytes/frame exceed the \
                 link's {:.1}",
                plan.achieved_ratio,
                plan.target_ratio,
                plan.bytes_per_frame,
                plan.link_bytes_per_frame,
            );
        }
    }
}

//! Overload-control acceptance: a supervised live session under a
//! scripted 2× encode overload must degrade down the quality ladder
//! instead of stalling, recover to the top rung when the load lifts,
//! keep every I-frame on the wire, and convert injected worker panics
//! into single dropped frames. With supervision off, the pipeline must
//! be byte-identical to the historical `stream_video`.
//!
//! Everything here is deterministic: encode times come from a scripted
//! load profile (not the wall clock), the throttled transport charges a
//! `FakeClock`, and the controller is a pure function of its
//! observations — so rung traces are asserted exactly.

use std::sync::Arc;

use pcc::adapt::{Controller, ControllerConfig, FakeClock, QualityLadder};
use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::fault::{panic_on_frames, ThrottledTransport};
use pcc::inter::InterConfig;
use pcc::stream::{
    stream_video, stream_video_supervised, Receiver, SharedStats, StreamConfig, StreamStats,
    Supervisor,
};
use pcc::types::{FrameKind, PointCloud, Video};

const BUDGET_MS: f64 = 33.34;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn clip(frames: usize) -> Video {
    catalog::by_name("Loot").unwrap().generate_scaled(frames, 1_200)
}

/// Queue deep enough that backpressure signals stay inert — the tests
/// script overload through the load profile, not thread scheduling.
fn config() -> StreamConfig {
    StreamConfig { queue_depth: 128, frame_budget_ms: Some(BUDGET_MS), ..StreamConfig::default() }
}

fn controller(degrade_after: u32, upgrade_after: u32) -> Controller {
    Controller::new(
        QualityLadder::standard(InterConfig::v1()),
        ControllerConfig {
            frame_budget_ms: BUDGET_MS,
            degrade_after,
            upgrade_after,
            headroom: 0.9,
        },
    )
}

/// Streams `video` under `supervisor` into a plain in-memory wire and
/// returns (wire, sender stats).
fn supervised_wire(
    video: &Video,
    supervisor: &mut Supervisor,
    cfg: &StreamConfig,
) -> (Vec<u8>, StreamStats) {
    let codec = PccCodec::new(Design::IntraInterV1);
    let d = device();
    stream_video_supervised(&codec, video, 7, &d, Vec::new(), cfg, supervisor).unwrap()
}

/// Receives everything off `wire`, returning the delivered frames and
/// the receiver's stats.
fn receive_all(wire: &[u8]) -> (Vec<(usize, FrameKind, PointCloud)>, StreamStats) {
    let d = device();
    let mut rx = Receiver::new(wire, &d);
    let mut out = Vec::new();
    while let Some(f) = rx.recv_frame().unwrap() {
        out.push((f.frame_index, f.kind, f.cloud));
    }
    (out, rx.into_stats())
}

fn clean_clouds(video: &Video) -> Vec<PointCloud> {
    let codec = PccCodec::new(Design::IntraInterV1);
    let d = device();
    let (wire, _) = stream_video(&codec, video, 7, &d, Vec::new(), &config()).unwrap();
    let (frames, _) = receive_all(&wire);
    frames.into_iter().map(|(_, _, cloud)| cloud).collect()
}

#[test]
fn passthrough_supervision_is_byte_identical_to_stream_video() {
    let video = clip(9);
    let codec = PccCodec::new(Design::IntraInterV1);
    let d = device();
    let (plain_wire, plain_tx) =
        stream_video(&codec, &video, 7, &d, Vec::new(), &config()).unwrap();
    let (sup_wire, sup_tx) = supervised_wire(&video, &mut Supervisor::passthrough(), &config());
    assert_eq!(plain_wire, sup_wire, "passthrough supervision must not move a byte");
    assert_eq!(plain_tx, sup_tx);
    assert_eq!(sup_tx.frames_degraded, 0);
    assert_eq!(sup_tx.rung_changes, 0);
    assert_eq!(sup_tx.watchdog_skips, 0);
    assert_eq!(sup_tx.panics_contained, 0);
}

#[test]
fn soak_degrades_under_overload_and_recovers_when_it_lifts() {
    // 36 frames at ~30 fps; frames 6..18 are a scripted 2× overload
    // (70 ms against a 33 ms budget), the rest run comfortably.
    let video = clip(36);
    let clock = FakeClock::new();
    // ~2 µs/byte on the shared fake clock: the wire is genuinely the
    // bottleneck in modeled time, yet the test runs instantly.
    let transport = ThrottledTransport::new(Vec::new(), Arc::new(clock.clone()), 2_000);

    let mut supervisor = Supervisor::new(controller(2, 2))
        .with_clock(Arc::new(clock.clone()))
        .with_abandon_factor(3.0)
        .with_load_profile(|idx, _modeled| if (6..18).contains(&idx) { 70.0 } else { 15.0 });

    let codec = PccCodec::new(Design::IntraInterV1);
    let d = device();
    let (transport, tx) =
        stream_video_supervised(&codec, &video, 7, &d, transport, &config(), &mut supervisor)
            .unwrap();
    let wire = transport.into_inner();

    // The rung trace is a pure function of the scripted load: degrade
    // to the bottom rung inside the overload window, climb back to the
    // top within 9 frames of it lifting, every change on an I-frame.
    let trace = supervisor.controller().unwrap().trace().to_vec();
    assert_eq!(trace, vec![(9, 1), (12, 3), (21, 2), (24, 1), (27, 0)], "stats: {tx:?}");
    assert!(trace.iter().all(|&(i, _)| i % 3 == 0), "rung changes must land on I-frames");
    assert!(trace.iter().any(|&(_, r)| r >= 2), "2× overload must cost at least two rungs");
    assert_eq!(trace.last(), Some(&(27, 0)), "the session must recover to full quality");
    assert_eq!(tx.rung_changes, 5);

    // Bottom rung sheds every second P-frame: 14, 17, 20 never leave
    // the encoder. Everything else ships.
    assert_eq!(tx.frames_sent, 33);
    assert_eq!(tx.watchdog_skips, 0, "70 ms is under the 3× abandon threshold");
    assert_eq!(tx.panics_contained, 0);
    assert!(tx.frames_degraded >= 15, "stats: {tx:?}");
    assert!(tx.clean_shutdown);

    // Delivery: shed P-frames surface as ordinary single-frame gaps —
    // no stall ever spans more than one frame interval, every I-frame
    // arrives, and the receiver needs no resync.
    let (frames, rx) = receive_all(&wire);
    assert_eq!(frames.len(), 33);
    assert_eq!(rx.frames_dropped, 3, "stats: {rx:?}");
    assert_eq!(rx.resyncs, 0, "P-frame shedding must never desync the receiver");
    let delivered: Vec<usize> = frames.iter().map(|&(i, _, _)| i).collect();
    for gof_start in (0..36).step_by(3) {
        assert!(delivered.contains(&gof_start), "I-frame {gof_start} must be delivered");
    }
    let max_gap = delivered.windows(2).map(|w| w[1] - w[0]).max().unwrap();
    assert!(max_gap <= 2, "no gap may span more than one missing frame: {delivered:?}");
    assert!(rx.clean_shutdown);
}

#[test]
fn the_watchdog_abandons_blown_p_frames_but_never_i_frames() {
    let video = clip(9);
    let clean = clean_clouds(&video);

    // Frame 4 (a P-slot) blows 2× the budget; everything else is fast.
    let mut supervisor = Supervisor::new(controller(100, 100))
        .with_load_profile(|idx, _| if idx == 4 { 500.0 } else { 10.0 });
    let (wire, tx) = supervised_wire(&video, &mut supervisor, &config());
    assert_eq!(tx.watchdog_skips, 1, "stats: {tx:?}");
    assert_eq!(tx.frames_sent, video.len() - 1);
    assert_eq!(tx.rung_changes, 0);

    let (frames, rx) = receive_all(&wire);
    assert_eq!(frames.len(), video.len() - 1);
    assert_eq!(rx.frames_dropped, 1);
    assert_eq!(rx.resyncs, 0);
    for (idx, _, cloud) in &frames {
        assert_ne!(*idx, 4, "the abandoned frame must not reach the wire");
        assert_eq!(cloud, &clean[*idx], "frame {idx} must stay bit-exact");
    }

    // The same blowup on an I-slot (frame 3) must ship anyway: I-frames
    // are the resync anchors and are never abandoned.
    let mut supervisor = Supervisor::new(controller(100, 100))
        .with_load_profile(|idx, _| if idx == 3 { 500.0 } else { 10.0 });
    let (_, tx) = supervised_wire(&video, &mut supervisor, &config());
    assert_eq!(tx.watchdog_skips, 0);
    assert_eq!(tx.frames_sent, video.len());
}

#[test]
fn a_p_frame_panic_costs_one_frame_and_the_rest_stay_bit_exact() {
    let video = clip(9);
    let clean = clean_clouds(&video);

    let mut supervisor = Supervisor::passthrough().with_encode_fault(panic_on_frames(&[4]));
    let (wire, tx) = supervised_wire(&video, &mut supervisor, &config());
    assert_eq!(tx.panics_contained, 1, "stats: {tx:?}");
    assert_eq!(tx.frames_sent, video.len() - 1);
    assert!(tx.clean_shutdown, "a contained panic must not kill the session");

    let (frames, rx) = receive_all(&wire);
    assert_eq!(frames.len(), video.len() - 1);
    assert_eq!(rx.frames_dropped, 1);
    assert_eq!(rx.resyncs, 0);
    for (idx, _, cloud) in &frames {
        assert_eq!(cloud, &clean[*idx], "frame {idx} must decode bit-exact after the panic");
    }
}

#[test]
fn an_i_frame_panic_reanchors_the_group_as_intra() {
    let video = clip(9);
    let clean = clean_clouds(&video);

    let mut supervisor = Supervisor::passthrough().with_encode_fault(panic_on_frames(&[3]));
    let (wire, tx) = supervised_wire(&video, &mut supervisor, &config());
    assert_eq!(tx.panics_contained, 1, "stats: {tx:?}");
    assert_eq!(tx.frames_sent, video.len() - 1);

    let (frames, rx) = receive_all(&wire);
    assert_eq!(frames.len(), video.len() - 1, "stats: {rx:?}");
    assert_eq!(rx.frames_dropped, 1);
    assert_eq!(rx.resyncs, 1, "the lost I-frame must cost exactly one resync");
    // The orphaned slots of the broken group re-anchor as intra-coded
    // pictures, so the receiver recovers *within* the group instead of
    // waiting for the next one.
    let reanchored: Vec<FrameKind> = frames
        .iter()
        .filter(|&&(i, _, _)| i == 4 || i == 5)
        .map(|&(_, k, _)| k)
        .collect();
    assert_eq!(reanchored, vec![FrameKind::Intra, FrameKind::Intra]);
    // Frames outside the broken group stay bit-exact.
    for (idx, _, cloud) in frames.iter().filter(|&&(i, _, _)| !(3..=5).contains(&i)) {
        assert_eq!(cloud, &clean[*idx], "frame {idx} must stay bit-exact");
    }
}

#[test]
fn receiver_feedback_drives_degradation_without_receiver_changes() {
    let video = clip(6);
    // A feedback slot already reporting loss: the very first observation
    // sees it and requests a step down, which lands at the next GOF.
    let feedback = SharedStats::new();
    feedback.publish(&StreamStats { frames_dropped: 5, ..StreamStats::default() });

    let mut supervisor = Supervisor::new(controller(1, 100))
        .with_feedback(feedback)
        .with_load_profile(|_, _| 5.0);
    let (wire, tx) = supervised_wire(&video, &mut supervisor, &config());
    assert_eq!(supervisor.controller().unwrap().trace(), &[(3, 1)], "stats: {tx:?}");
    assert_eq!(tx.rung_changes, 1);
    assert_eq!(tx.frames_degraded, 3, "frames 3..6 encode one rung down");

    // Degraded rungs stay wire-compatible: everything still decodes.
    let (frames, rx) = receive_all(&wire);
    assert_eq!(frames.len(), video.len());
    assert_eq!(rx.frames_dropped, 0);
}

//! Thread-count determinism: the parallel execution layer must produce
//! byte-identical bitstreams at every host thread count, for both the
//! intra and inter codecs. This is the contract that lets the `threads`
//! knob (and `PCC_THREADS`) be a pure performance control — and the
//! same contract holds for `pcc-probe`: recording spans must never
//! perturb a single output byte.

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::inter::{InterCodec, InterConfig};
use pcc::intra::{IntraCodec, IntraConfig};
use pcc::types::{Video, VoxelizedCloud};
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn video(frames: usize, points: usize) -> Video {
    catalog::by_name("Longdress").expect("Table-I video").generate_scaled(frames, points)
}

/// 1, 2, and the machine's available parallelism (deduplicated).
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

#[test]
fn intra_bitstream_identical_across_thread_counts() {
    let v = video(1, 20_000);
    let vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 8);
    let d = device();
    for entropy in [false, true] {
        let encode_at = |t: usize| {
            let cfg = IntraConfig { entropy, ..IntraConfig::default() }.with_threads(t);
            let frame = IntraCodec::new(cfg).encode(&vox, &d);
            (frame.geometry, frame.attribute)
        };
        let baseline = encode_at(1);
        for t in thread_counts() {
            assert_eq!(
                encode_at(t),
                baseline,
                "intra stream differs at {t} threads (entropy={entropy})"
            );
        }
    }
}

#[test]
fn inter_bitstream_identical_across_thread_counts() {
    let v = video(2, 20_000);
    let i_vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 8);
    let p_vox = VoxelizedCloud::from_cloud(&v.frame(1).unwrap().cloud, 8);
    let d = device();

    // Reference colors must themselves be thread-independent; derive them
    // once at one thread so any divergence below is the inter codec's.
    let intra = IntraCodec::new(IntraConfig::default().with_threads(1));
    let reference = intra
        .decode(&intra.encode(&i_vox, &d), &d)
        .expect("reference decodes")
        .colors()
        .to_vec();

    let mut baseline: Option<(Vec<u8>, Vec<u8>)> = None;
    for t in thread_counts() {
        let cfg = InterConfig {
            intra: IntraConfig::default().with_threads(t),
            ..InterConfig::v2()
        };
        let enc = InterCodec::new(cfg).encode(&p_vox, &reference, &d);
        let streams = (enc.frame.geometry.clone(), enc.frame.attribute.clone());
        match &baseline {
            None => baseline = Some(streams),
            Some(expect) => {
                assert_eq!(&streams, expect, "inter stream differs at {t} threads");
            }
        }
    }
}

#[test]
fn probes_never_perturb_bitstreams() {
    // Encode the full pipeline (morton → octree → intra → inter →
    // container) with probe recording off and on, at 1 thread and at the
    // machine's maximum, and require byte-identical wires throughout.
    // This is what makes `PCC_PROBE=1` safe to leave on in production.
    let v = video(2, 8_000);
    let codec = PccCodec::new(Design::IntraInterV1);
    let was_enabled = pcc::probe::enabled();

    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1, max] {
        let dev = device().with_host_threads(NonZeroUsize::new(threads));
        let encode = |probes: bool| {
            pcc::probe::set_enabled(probes);
            container::mux(&codec.encode_video(&v, 7, &dev))
        };
        let off = encode(false);
        let on = encode(true);
        assert_eq!(
            on, off,
            "bitstream differs probes-on vs probes-off at {threads} threads"
        );
    }

    pcc::probe::set_enabled(was_enabled);
    let _ = pcc::probe::take_report(); // drop the spans this test recorded
}

/// One brick-partitioned frame plus its full decode, built once: the
/// brick determinism properties below all interrogate the same bytes.
fn brick_fixture() -> &'static (pcc::intra::IntraFrame, VoxelizedCloud) {
    use std::sync::OnceLock;
    static FIX: OnceLock<(pcc::intra::IntraFrame, VoxelizedCloud)> = OnceLock::new();
    FIX.get_or_init(|| {
        let v = video(1, 20_000);
        let vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 8);
        let d = device();
        let codec = IntraCodec::new(IntraConfig::default().with_bricks(3).with_threads(1));
        let frame = codec.encode(&vox, &d);
        let full = codec.decode(&frame, &d).expect("brick frame decodes");
        (frame, full)
    })
}

#[test]
fn brick_decode_is_identical_sequential_vs_parallel_and_under_probes() {
    let (frame, full) = brick_fixture();
    let d = device();
    let was_enabled = pcc::probe::enabled();
    for probes in [false, true] {
        pcc::probe::set_enabled(probes);
        for t in thread_counts() {
            let codec = IntraCodec::new(IntraConfig::default().with_bricks(3).with_threads(t));
            let decoded = codec.decode(frame, &d).expect("brick frame decodes");
            assert_eq!(
                (decoded.coords(), decoded.colors()),
                (full.coords(), full.colors()),
                "brick decode differs at {t} threads (probes={probes})"
            );
        }
    }
    pcc::probe::set_enabled(was_enabled);
    let _ = pcc::probe::take_report();
}

#[test]
fn full_brick_decode_equals_concatenation_of_singleton_partial_decodes() {
    let (frame, full) = brick_fixture();
    let d = device();
    let limits = pcc::types::Limits::default();
    let codec = IntraCodec::new(IntraConfig::default().with_bricks(3).with_threads(1));
    let index = codec.brick_index(frame, &limits).expect("index parses");
    assert!(index.len() > 1, "fixture must span several bricks");

    let mut coords = Vec::new();
    let mut colors = Vec::new();
    for entry in index.entries() {
        let cell = entry.cell;
        let one = codec
            .decode_bricks(frame, &d, &limits, |e, _| e.cell == cell)
            .expect("single-brick decode");
        coords.extend_from_slice(one.coords());
        colors.extend_from_slice(one.colors());
    }
    assert_eq!(coords.as_slice(), full.coords(), "geometry must concatenate in cell order");
    assert_eq!(colors.as_slice(), full.colors(), "attributes must concatenate in cell order");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]
    #[test]
    fn viewport_decode_matches_the_same_subset_of_a_full_decode(seed in 0u64..u64::MAX) {
        // A seed-derived random viewport box; the partial decode must be
        // bit-identical to concatenating exactly the bricks it selects.
        let (frame, _) = brick_fixture();
        let d = device();
        let limits = pcc::types::Limits::default();
        let codec = IntraCodec::new(IntraConfig::default().with_bricks(3).with_threads(1));
        let index = codec.brick_index(frame, &limits).expect("index parses");
        let world = index.bounds(index.entries().first().expect("non-empty"));
        let (mut lo, mut hi) = (world.min(), world.max());
        for entry in index.entries() {
            let b = index.bounds(entry);
            lo = pcc::types::Point3::new(lo.x.min(b.min().x), lo.y.min(b.min().y), lo.z.min(b.min().z));
            hi = pcc::types::Point3::new(hi.x.max(b.max().x), hi.y.max(b.max().y), hi.z.max(b.max().z));
        }

        // xorshift* keeps the shim dependency-free and the case replayable.
        let mut state = seed | 1;
        let mut unit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        let axis = |a: f32, b: f32, u0: f32, u1: f32| {
            let (f0, f1) = if u0 <= u1 { (u0, u1) } else { (u1, u0) };
            (a + f0 * (b - a), a + f1 * (b - a))
        };
        let (x0, x1) = axis(lo.x, hi.x, unit(), unit());
        let (y0, y1) = axis(lo.y, hi.y, unit(), unit());
        let (z0, z1) = axis(lo.z, hi.z, unit(), unit());
        let viewport =
            pcc::types::Aabb::new(pcc::types::Point3::new(x0, y0, z0), pcc::types::Point3::new(x1, y1, z1));

        let selected: Vec<u64> = index
            .entries()
            .iter()
            .filter(|e| index.bounds(e).intersects(&viewport))
            .map(|e| e.cell)
            .collect();

        let partial = codec.decode_viewport(frame, &d, &limits, &viewport).expect("partial decode");

        let mut coords = Vec::new();
        let mut colors = Vec::new();
        for &cell in &selected {
            let one = codec
                .decode_bricks(frame, &d, &limits, |e, _| e.cell == cell)
                .expect("single-brick decode");
            coords.extend_from_slice(one.coords());
            colors.extend_from_slice(one.colors());
        }
        prop_assert_eq!(partial.coords(), coords.as_slice());
        prop_assert_eq!(partial.colors(), colors.as_slice());
    }
}

#[test]
fn env_override_is_equivalent_to_config() {
    // `PCC_THREADS` is read once per process (cached); spawn no second
    // process here — instead check that an explicit config of 1 matches
    // the explicit max, which is the same guarantee the env knob rides on.
    let v = video(1, 5_000);
    let vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 7);
    let d = device();
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let one = IntraCodec::new(IntraConfig::default().with_threads(1)).encode(&vox, &d);
    let many = IntraCodec::new(IntraConfig::default().with_threads(max)).encode(&vox, &d);
    assert_eq!(one, many);
    assert!(NonZeroUsize::new(max).is_some());
}

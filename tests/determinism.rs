//! Thread-count determinism: the parallel execution layer must produce
//! byte-identical bitstreams at every host thread count, for both the
//! intra and inter codecs. This is the contract that lets the `threads`
//! knob (and `PCC_THREADS`) be a pure performance control — and the
//! same contract holds for `pcc-probe`: recording spans must never
//! perturb a single output byte.

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::inter::{InterCodec, InterConfig};
use pcc::intra::{IntraCodec, IntraConfig};
use pcc::types::{Video, VoxelizedCloud};
use std::num::NonZeroUsize;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn video(frames: usize, points: usize) -> Video {
    catalog::by_name("Longdress").expect("Table-I video").generate_scaled(frames, points)
}

/// 1, 2, and the machine's available parallelism (deduplicated).
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

#[test]
fn intra_bitstream_identical_across_thread_counts() {
    let v = video(1, 20_000);
    let vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 8);
    let d = device();
    for entropy in [false, true] {
        let encode_at = |t: usize| {
            let cfg = IntraConfig { entropy, ..IntraConfig::default() }.with_threads(t);
            let frame = IntraCodec::new(cfg).encode(&vox, &d);
            (frame.geometry, frame.attribute)
        };
        let baseline = encode_at(1);
        for t in thread_counts() {
            assert_eq!(
                encode_at(t),
                baseline,
                "intra stream differs at {t} threads (entropy={entropy})"
            );
        }
    }
}

#[test]
fn inter_bitstream_identical_across_thread_counts() {
    let v = video(2, 20_000);
    let i_vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 8);
    let p_vox = VoxelizedCloud::from_cloud(&v.frame(1).unwrap().cloud, 8);
    let d = device();

    // Reference colors must themselves be thread-independent; derive them
    // once at one thread so any divergence below is the inter codec's.
    let intra = IntraCodec::new(IntraConfig::default().with_threads(1));
    let reference = intra
        .decode(&intra.encode(&i_vox, &d), &d)
        .expect("reference decodes")
        .colors()
        .to_vec();

    let mut baseline: Option<(Vec<u8>, Vec<u8>)> = None;
    for t in thread_counts() {
        let cfg = InterConfig {
            intra: IntraConfig::default().with_threads(t),
            ..InterConfig::v2()
        };
        let enc = InterCodec::new(cfg).encode(&p_vox, &reference, &d);
        let streams = (enc.frame.geometry.clone(), enc.frame.attribute.clone());
        match &baseline {
            None => baseline = Some(streams),
            Some(expect) => {
                assert_eq!(&streams, expect, "inter stream differs at {t} threads");
            }
        }
    }
}

#[test]
fn probes_never_perturb_bitstreams() {
    // Encode the full pipeline (morton → octree → intra → inter →
    // container) with probe recording off and on, at 1 thread and at the
    // machine's maximum, and require byte-identical wires throughout.
    // This is what makes `PCC_PROBE=1` safe to leave on in production.
    let v = video(2, 8_000);
    let codec = PccCodec::new(Design::IntraInterV1);
    let was_enabled = pcc::probe::enabled();

    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1, max] {
        let dev = device().with_host_threads(NonZeroUsize::new(threads));
        let encode = |probes: bool| {
            pcc::probe::set_enabled(probes);
            container::mux(&codec.encode_video(&v, 7, &dev))
        };
        let off = encode(false);
        let on = encode(true);
        assert_eq!(
            on, off,
            "bitstream differs probes-on vs probes-off at {threads} threads"
        );
    }

    pcc::probe::set_enabled(was_enabled);
    let _ = pcc::probe::take_report(); // drop the spans this test recorded
}

#[test]
fn env_override_is_equivalent_to_config() {
    // `PCC_THREADS` is read once per process (cached); spawn no second
    // process here — instead check that an explicit config of 1 matches
    // the explicit max, which is the same guarantee the env knob rides on.
    let v = video(1, 5_000);
    let vox = VoxelizedCloud::from_cloud(&v.frame(0).unwrap().cloud, 7);
    let d = device();
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let one = IntraCodec::new(IntraConfig::default().with_threads(1)).encode(&vox, &d);
    let many = IntraCodec::new(IntraConfig::default().with_threads(max)).encode(&vox, &d);
    assert_eq!(one, many);
    assert!(NonZeroUsize::new(max).is_some());
}

//! Streaming transport acceptance: incremental receive must match the
//! offline decoder bit for bit on clean wires, and degrade to dropped
//! frames — never panics or wrong pictures — on corrupted ones.

use std::num::NonZeroUsize;

use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::stream::{
    encode_chunk, stream_video, Chunk, ChunkKind, ChunkReader, Delivered, Receiver, StreamConfig,
};
use pcc::types::{PointCloud, Video};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn clip(frames: usize) -> Video {
    catalog::by_name("Soldier").unwrap().generate_scaled(frames, 1_500)
}

fn receive_all(wire: &[u8], d: &Device) -> (Vec<Delivered>, pcc::stream::StreamStats) {
    let mut rx = Receiver::new(wire, d);
    let mut out = Vec::new();
    while let Some(frame) = rx.recv_frame().expect("in-memory transport cannot fail") {
        out.push(frame);
    }
    (out, rx.into_stats())
}

/// Splits a wire capture back into its chunks (all intact here).
fn chunks_of(wire: &[u8]) -> Vec<Chunk> {
    let mut reader = ChunkReader::new(wire);
    let mut chunks = Vec::new();
    while let Some(c) = reader.next_chunk().unwrap() {
        chunks.push(c);
    }
    assert_eq!(reader.corrupt_events(), 0, "capture should be clean");
    chunks
}

fn reassemble(chunks: &[Chunk]) -> Vec<u8> {
    chunks.iter().flat_map(encode_chunk).collect()
}

#[test]
fn incremental_receive_matches_offline_decode_bit_for_bit() {
    let video = clip(8);
    for design in [Design::IntraInterV1, Design::IntraInterV2] {
        let codec = PccCodec::new(design);
        for threads in [NonZeroUsize::new(1), None] {
            let d = device().with_host_threads(threads);
            let offline: Vec<PointCloud> = {
                let enc = codec.encode_video(&video, 7, &d);
                codec.decode_video(&enc, &d).unwrap()
            };

            let (wire, tx) =
                stream_video(&codec, &video, 7, &d, Vec::new(), &StreamConfig::default()).unwrap();
            assert_eq!(tx.frames_sent, video.len(), "{design}");
            assert!(tx.clean_shutdown);

            let (delivered, rx) = receive_all(&wire, &d);
            assert_eq!(delivered.len(), offline.len(), "{design} lost frames");
            assert_eq!(rx.frames_dropped, 0);
            assert_eq!(rx.resyncs, 0);
            assert!(rx.clean_shutdown);
            assert_eq!(rx.bytes_received, tx.bytes_sent);
            for (i, frame) in delivered.iter().enumerate() {
                assert_eq!(frame.frame_index, i);
                assert_eq!(
                    frame.cloud, offline[i],
                    "{design} threads={threads:?}: frame {i} diverged from offline decode"
                );
            }
        }
    }
}

#[test]
fn push_sender_wire_matches_pipelined_sender() {
    let video = clip(6);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let (pipelined, _) =
        stream_video(&codec, &video, 7, &d, Vec::new(), &StreamConfig::default()).unwrap();

    let mut sender = pcc::stream::Sender::new(&codec, 7, &d, Vec::new(), &StreamConfig::default())
        .unwrap()
        .with_bounding_box(video.bounding_box().unwrap());
    for frame in video.iter() {
        sender.send_frame(&frame.cloud).unwrap();
    }
    let (pushed, stats) = sender.finish().unwrap();
    assert_eq!(stats.frames_sent, video.len());
    assert_eq!(pushed, pipelined, "push and pipelined senders must emit identical wires");
}

#[test]
fn corrupting_a_full_gof_drops_it_and_resyncs_at_next_intra() {
    // 12 frames = 4 IPP groups; corrupt every chunk of GOF 1 (frames
    // 3..6) so both its I-frame and its P-frames are lost.
    let video = clip(12);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let clean_wire = wire_clean(&codec, &video, &d);
    let (clean, _) = receive_all(&clean_wire, &d);
    assert_eq!(clean.len(), 12);

    // Corrupt *after* framing (re-encoding a mutated chunk would stamp a
    // fresh, valid CRC over the damage): flip one payload byte in every
    // chunk of GOF 1's frames.
    let mut wire = Vec::new();
    for chunk in chunks_of(&clean_wire) {
        let mut bytes = encode_chunk(&chunk);
        if chunk.kind == ChunkKind::Frame && (3..6).contains(&(chunk.frame_index as usize)) {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        wire.extend_from_slice(&bytes);
    }

    let (delivered, rx) = receive_all(&wire, &d);
    // Frames 3, 4, 5 are gone; everything else must survive.
    assert_eq!(rx.frames_dropped, 3, "stats: {rx:?}");
    assert_eq!(rx.resyncs, 1, "stats: {rx:?}");
    assert!(rx.corrupt_events >= 3);
    assert!(rx.clean_shutdown);
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![0, 1, 2, 6, 7, 8, 9, 10, 11]);
    for frame in &delivered {
        assert_eq!(
            frame.cloud, clean[frame.frame_index].cloud,
            "frame {} diverged after resync",
            frame.frame_index
        );
    }
}

fn wire_clean(codec: &PccCodec, video: &Video, d: &Device) -> Vec<u8> {
    stream_video(codec, video, 7, d, Vec::new(), &StreamConfig::default()).unwrap().0
}

#[test]
fn losing_one_predicted_frame_costs_only_itself() {
    let video = clip(9);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV2);
    let wire = wire_clean(&codec, &video, &d);
    let (clean, _) = receive_all(&wire, &d);

    // Drop frame 4 (a P-frame mid-GOF) from the wire entirely.
    let chunks: Vec<Chunk> = chunks_of(&wire)
        .into_iter()
        .filter(|c| !(c.kind == ChunkKind::Frame && c.frame_index == 4))
        .collect();
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);

    // P-frames reference only their GOF's I-frame, so frame 5 still
    // decodes; no resync is needed because sync was never lost.
    assert_eq!(rx.frames_dropped, 1);
    assert_eq!(rx.resyncs, 0, "P loss must not count as a resync");
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3, 5, 6, 7, 8]);
    for frame in &delivered {
        assert_eq!(frame.cloud, clean[frame.frame_index].cloud, "frame {}", frame.frame_index);
    }
}

#[test]
fn losing_an_intra_frame_orphans_its_gof() {
    let video = clip(9);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire = wire_clean(&codec, &video, &d);
    let (clean, _) = receive_all(&wire, &d);

    // Drop frame 3 — the I-frame of GOF 1. Its P-frames (4, 5) arrive
    // intact but must not be decoded against GOF 0's reference.
    let chunks: Vec<Chunk> = chunks_of(&wire)
        .into_iter()
        .filter(|c| !(c.kind == ChunkKind::Frame && c.frame_index == 3))
        .collect();
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);

    assert_eq!(rx.frames_dropped, 3, "I + its two orphaned Ps: {rx:?}");
    assert_eq!(rx.resyncs, 1);
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![0, 1, 2, 6, 7, 8]);
    for frame in &delivered {
        assert_eq!(frame.cloud, clean[frame.frame_index].cloud, "frame {}", frame.frame_index);
    }
}

#[test]
fn tail_loss_is_reported_via_the_end_chunk() {
    let video = clip(6);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire = wire_clean(&codec, &video, &d);

    // Drop the last two frames but keep the end chunk.
    let chunks: Vec<Chunk> = chunks_of(&wire)
        .into_iter()
        .filter(|c| !(c.kind == ChunkKind::Frame && c.frame_index >= 4))
        .collect();
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);
    assert_eq!(delivered.len(), 4);
    assert_eq!(rx.frames_dropped, 2, "end chunk must reveal tail loss: {rx:?}");
    assert!(rx.clean_shutdown);

    // Without the end chunk the transport just ends: no clean shutdown.
    let chunks: Vec<Chunk> =
        chunks_of(&wire).into_iter().filter(|c| c.kind != ChunkKind::End).collect();
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);
    assert_eq!(delivered.len(), 6);
    assert!(!rx.clean_shutdown);
}

#[test]
fn headerless_streams_deliver_nothing_but_do_not_panic() {
    let video = clip(3);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire = wire_clean(&codec, &video, &d);
    let chunks: Vec<Chunk> =
        chunks_of(&wire).into_iter().filter(|c| c.kind != ChunkKind::StreamHeader).collect();
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);
    assert!(delivered.is_empty(), "no design known, nothing decodable");
    assert_eq!(rx.frames_dropped, 3);
}

#[test]
fn announced_join_points_exclude_pre_join_frames_from_loss() {
    let video = clip(9);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire = wire_clean(&codec, &video, &d);
    let (clean, _) = receive_all(&wire, &d);

    // A broadcast-style mid-stream tail: [header, I3, P4, ..., end].
    // Frames 0..3 were never sent to this subscriber.
    let chunks: Vec<Chunk> = chunks_of(&wire)
        .into_iter()
        .filter(|c| c.kind != ChunkKind::Frame || c.frame_index >= 3)
        .collect();
    let tail = reassemble(&chunks);

    // Without a declared join point, the receiver has no way to tell a
    // late join from loss: frames 0..3 are booked as dropped.
    let (_, rx) = receive_all(&tail, &d);
    assert_eq!(rx.frames_dropped, 3);

    // With the join point declared, nothing before it counts as loss —
    // not mid-stream and not in the end chunk's tail accounting.
    let mut rx = Receiver::new(tail.as_slice(), &d).with_join_at(3);
    let mut delivered = Vec::new();
    while let Some(frame) = rx.recv_frame().unwrap() {
        delivered.push(frame);
    }
    let stats = rx.into_stats();
    assert_eq!(stats.frames_dropped, 0, "pre-join frames booked as loss: {stats:?}");
    assert_eq!(stats.resyncs, 0);
    assert!(stats.clean_shutdown);
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![3, 4, 5, 6, 7, 8]);
    for frame in &delivered {
        assert_eq!(frame.cloud, clean[frame.frame_index].cloud, "frame {}", frame.frame_index);
    }

    // Loss *after* the join point still counts: drop P4 from the tail.
    let chunks: Vec<Chunk> = chunks_of(&tail)
        .into_iter()
        .filter(|c| !(c.kind == ChunkKind::Frame && c.frame_index == 4))
        .collect();
    let trimmed = reassemble(&chunks);
    let mut rx = Receiver::new(trimmed.as_slice(), &d).with_join_at(3);
    while rx.recv_frame().unwrap().is_some() {}
    let stats = rx.into_stats();
    assert_eq!(stats.frames_dropped, 1, "post-join loss must still be booked: {stats:?}");
}

#[test]
fn the_extended_stream_header_announces_the_join_point() {
    let video = clip(6);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire = wire_clean(&codec, &video, &d);

    // Rewrite the header the way a broadcaster does for a late joiner:
    // append the join frame index to the header payload. Everything
    // else on the wire stays untouched.
    let chunks: Vec<Chunk> = chunks_of(&wire)
        .into_iter()
        .filter(|c| c.kind != ChunkKind::Frame || c.frame_index >= 3)
        .map(|mut c| {
            if c.kind == ChunkKind::StreamHeader {
                c.payload.extend_from_slice(&3u32.to_le_bytes());
            }
            c
        })
        .collect();

    // A plain receiver — no builder hint — honors the announced join
    // point: legacy receivers ignore the extra header bytes, extended
    // ones stop booking the pre-join range as loss.
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);
    assert_eq!(rx.frames_dropped, 0, "the header's join point was ignored: {rx:?}");
    assert!(rx.clean_shutdown);
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![3, 4, 5]);
}

#[test]
fn damaged_brick_frame_is_delivered_partially_and_booked_as_such() {
    use pcc::inter::InterConfig;
    use pcc::intra::IntraConfig;

    let video = clip(6);
    let d = device();
    let codec = PccCodec::with_inter_config(InterConfig {
        intra: IntraConfig::default().with_bricks(2),
        ..InterConfig::v1()
    });
    let clean_wire = wire_clean(&codec, &video, &d);
    let (clean, clean_rx) = receive_all(&clean_wire, &d);
    assert_eq!(clean.len(), 6, "brick frames must stream losslessly on a clean wire");
    assert_eq!(clean_rx.partial_frames, 0);

    // Flip one byte inside I-frame 3's attribute stream: it lands in
    // one brick's attribute payload, past the CRC-guarded brick index.
    // (The container record's tail is a few varints of metadata, so aim
    // well short of the end.) Re-encoding the chunk stamps a fresh chunk
    // CRC over the damage, modelling corruption the transport layer
    // cannot see (a bad sender buffer, a re-framing middlebox).
    let mut chunks = chunks_of(&clean_wire);
    let victim = chunks
        .iter_mut()
        .filter(|c| c.kind == ChunkKind::Frame && c.frame_index == 3)
        .last()
        .expect("frame 3 on the wire");
    let at = victim.payload.len() - 32;
    victim.payload[at] ^= 0x01;
    let (delivered, rx) = receive_all(&reassemble(&chunks), &d);

    // Frame 3 arrives partially; its orphaned P-frames (4, 5) are lost
    // because a partial picture never anchors the reference chain.
    let indices: Vec<usize> = delivered.iter().map(|f| f.frame_index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3], "stats: {rx:?}");
    assert_eq!(rx.frames_delivered, 4);
    assert_eq!(rx.frames_dropped, 2, "orphaned P-frames: {rx:?}");
    assert_eq!(rx.partial_frames, 1);
    assert!(rx.bricks_dropped >= 1, "stats: {rx:?}");

    for frame in &delivered[..3] {
        assert_eq!(frame.partial, None);
        assert_eq!(frame.cloud, clean[frame.frame_index].cloud, "frame {}", frame.frame_index);
    }
    let partial = &delivered[3];
    let (dropped, total) = partial.partial.expect("frame 3 must be marked partial");
    assert_eq!(dropped, rx.bricks_dropped);
    assert!(dropped >= 1 && dropped < total, "{dropped}/{total}");

    // The survivors are byte-identical to the same bricks of a clean
    // decode: a strict subset, never a repaint.
    let full: std::collections::BTreeSet<_> = clean[3]
        .cloud
        .iter()
        .map(|(p, c)| ((p.x.to_bits(), p.y.to_bits(), p.z.to_bits()), c))
        .collect();
    let salvaged: Vec<_> = partial
        .cloud
        .iter()
        .map(|(p, c)| ((p.x.to_bits(), p.y.to_bits(), p.z.to_bits()), c))
        .collect();
    assert!(salvaged.len() < full.len(), "damage must cost points: {}", salvaged.len());
    assert!(!salvaged.is_empty(), "undamaged bricks must survive");
    for entry in &salvaged {
        assert!(full.contains(entry), "salvaged point absent from the clean decode");
    }
}

#[test]
fn chunk_payload_offsets_and_container_errors_are_stream_absolute() {
    let video = clip(3);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire = wire_clean(&codec, &video, &d);

    // Every payload offset the reader reports must index into the
    // original wire — this is what lets the session pass stream-absolute
    // positions down to the container parser.
    let mut reader = ChunkReader::new(wire.as_slice());
    let mut seen = 0;
    while let Some(chunk) = reader.next_chunk().unwrap() {
        let off = reader.last_payload_offset().expect("offset recorded per chunk") as usize;
        assert_eq!(
            wire.get(off..off + chunk.payload.len()),
            Some(chunk.payload.as_slice()),
            "payload offset must be wire-absolute, not frame-relative"
        );
        seen += 1;
    }
    assert!(seen > 3, "header + frames + end expected");

    // demux errors are rebased by the caller-supplied stream offset, so
    // a diagnostic points at the wire position, not "offset 0 again".
    let mut input = &[][..];
    let err = pcc::core::container::demux_frame(&mut input, 1_000).unwrap_err();
    match err {
        pcc::core::container::ContainerError::Truncated { offset } => assert_eq!(offset, 1_000),
        other => panic!("expected Truncated, got {other}"),
    }
}

#[test]
fn foreign_stream_chunks_are_ignored() {
    let video = clip(3);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    let wire_a = stream_video(&codec, &video, 7, &d, Vec::new(), &StreamConfig::default())
        .unwrap()
        .0;
    let wire_b = stream_video(
        &codec,
        &video,
        7,
        &d,
        Vec::new(),
        &StreamConfig { stream_id: 7, ..StreamConfig::default() },
    )
    .unwrap()
    .0;

    // Interleave the two sessions chunk by chunk on one wire; end with
    // stream A's end chunk last so its tail accounting still runs.
    let a = chunks_of(&wire_a);
    let b = chunks_of(&wire_b);
    let mut mixed = Vec::new();
    for i in 0..a.len().max(b.len()) {
        if let Some(c) = b.get(i) {
            mixed.push(c.clone());
        }
        if let Some(c) = a.get(i) {
            mixed.push(c.clone());
        }
    }
    let (delivered, rx) = receive_all(&reassemble(&mixed), &d);
    // Stream B arrives first, so the receiver locks onto id 7 and drops
    // stream A's chunks; A's trailing end chunk is never read because
    // B's end chunk already closed the session.
    assert_eq!(delivered.len(), video.len());
    assert!(delivered.iter().all(|f| f.frame_index < video.len()));
    assert_eq!(rx.chunks_dropped, a.len() - 1, "stream A ignored: {rx:?}");
}

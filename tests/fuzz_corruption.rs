//! Property-based corruption fuzzing: random byte mutations, truncations,
//! and splices against every decoder in the workspace — including the
//! streaming chunk layer. Decoders may reject input or produce garbage
//! values, but must never panic, and a streaming receiver must never
//! deliver a frame that differs from its clean-run counterpart.

use std::sync::OnceLock;

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::intra::{IntraCodec, IntraConfig, IntraFrame};
use pcc::stream::{encode_chunk, stream_video, Chunk, ChunkReader, Receiver, StreamConfig};
use pcc::types::{PointCloud, VoxelizedCloud};
use proptest::prelude::*;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn sample_frame() -> IntraFrame {
    let cloud = catalog::by_name("Loot").unwrap().generator_with_points(600).frame_cloud(0);
    let vox = VoxelizedCloud::from_cloud(&cloud, 6);
    IntraCodec::new(IntraConfig::paper()).encode(&vox, &device())
}

fn sample_container() -> Vec<u8> {
    let video = catalog::by_name("Loot").unwrap().generate_scaled(2, 400);
    let encoded = PccCodec::new(Design::IntraInterV1).encode_video(&video, 6, &device());
    container::mux(&encoded)
}

/// A clean captured wire plus the clouds a lossless receiver delivers
/// from it, built once (encoding is the expensive part of each case).
fn sample_stream() -> &'static (Vec<u8>, Vec<PointCloud>) {
    static SAMPLE: OnceLock<(Vec<u8>, Vec<PointCloud>)> = OnceLock::new();
    SAMPLE.get_or_init(|| {
        let video = catalog::by_name("Loot").unwrap().generate_scaled(6, 400);
        let codec = PccCodec::new(Design::IntraInterV1);
        let d = device();
        let (wire, _) =
            stream_video(&codec, &video, 6, &d, Vec::new(), &StreamConfig::default()).unwrap();
        let mut rx = Receiver::new(wire.as_slice(), &d);
        let mut clean = Vec::new();
        while let Some(frame) = rx.recv_frame().unwrap() {
            assert_eq!(frame.frame_index, clean.len());
            clean.push(frame.cloud);
        }
        assert_eq!(clean.len(), video.len());
        (wire, clean)
    })
}

/// The core streaming safety property: feeding `wire` (however mangled)
/// to a receiver never panics, delivers frames in strictly increasing
/// order, and never delivers a frame that differs from the clean run —
/// corruption may only *remove* frames.
fn assert_streaming_safety(wire: &[u8]) {
    let (_, clean) = sample_stream();
    let d = device();
    let mut rx = Receiver::new(wire, &d);
    let mut last: Option<usize> = None;
    while let Some(frame) = rx.recv_frame().expect("slice transports cannot fail") {
        assert!(last.is_none_or(|l| frame.frame_index > l), "out-of-order delivery");
        last = Some(frame.frame_index);
        let reference = clean.get(frame.frame_index).expect("invented frame index");
        assert_eq!(&frame.cloud, reference, "frame {} corrupted silently", frame.frame_index);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn intra_decoder_survives_random_mutations(
        positions in prop::collection::vec(0usize..4096, 1..12),
        xor in 1u8..=255,
    ) {
        let frame = sample_frame();
        let codec = IntraCodec::new(IntraConfig::paper());
        let d = device();
        let mut bad = frame.clone();
        for &p in &positions {
            if !bad.geometry.is_empty() {
                let len = bad.geometry.len();
                bad.geometry[p % len] ^= xor;
            }
            if !bad.attribute.is_empty() {
                let len = bad.attribute.len();
                bad.attribute[p % len] ^= xor;
            }
        }
        let _ = codec.decode(&bad, &d); // outcome irrelevant; no panic
    }

    #[test]
    fn container_demux_survives_random_mutations(
        positions in prop::collection::vec(0usize..8192, 1..16),
        xor in 1u8..=255,
    ) {
        let mut bytes = sample_container();
        for &p in &positions {
            let len = bytes.len();
            bytes[p % len] ^= xor;
        }
        if let Ok(video) = container::demux(&bytes) {
            // Even structurally valid mutations must decode without panic.
            let _ = PccCodec::new(video.design).decode_video(&video, &device());
        }
    }

    #[test]
    fn container_demux_survives_random_splices(
        cut_at in 0usize..4096,
        insert in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = sample_container();
        let at = cut_at % bytes.len();
        let tail = bytes.split_off(at);
        bytes.extend(insert);
        bytes.extend(tail);
        if let Ok(video) = container::demux(&bytes) {
            let _ = PccCodec::new(video.design).decode_video(&video, &device());
        }
    }

    #[test]
    fn occupancy_decoder_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = pcc::octree::decode_occupancy(&bytes);
    }

    #[test]
    fn range_decoder_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        n in 0usize..64,
    ) {
        let mut model = pcc::entropy::ByteModel::new();
        let mut dec = pcc::entropy::RangeDecoder::new(&bytes);
        for _ in 0..n {
            let _ = dec.decode_byte(&mut model);
        }
    }

    #[test]
    fn chunk_stream_survives_random_bit_flips(
        positions in prop::collection::vec(0usize..(1 << 20), 1..24),
        bit in 0u8..8,
    ) {
        let (wire, _) = sample_stream();
        let mut bad = wire.clone();
        for &p in &positions {
            let len = bad.len();
            bad[p % len] ^= 1 << bit;
        }
        assert_streaming_safety(&bad);
    }

    #[test]
    fn chunk_stream_survives_truncation(cut in 0usize..(1 << 20)) {
        let (wire, _) = sample_stream();
        assert_streaming_safety(&wire[..cut % (wire.len() + 1)]);
    }

    #[test]
    fn chunk_stream_survives_splices(
        cut_at in 0usize..(1 << 20),
        insert in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let (wire, _) = sample_stream();
        let at = cut_at % wire.len();
        let mut bad = wire[..at].to_vec();
        bad.extend(&insert);
        bad.extend(&wire[at..]);
        assert_streaming_safety(&bad);
    }

    #[test]
    fn chunk_stream_survives_chunk_drops_and_reordering(
        keep in prop::collection::vec(any::<bool>(), 8),
        swaps in prop::collection::vec((0usize..32, 0usize..32), 0..6),
    ) {
        let (wire, _) = sample_stream();
        let mut reader = ChunkReader::new(wire.as_slice());
        let mut chunks: Vec<Chunk> = Vec::new();
        while let Some(c) = reader.next_chunk().unwrap() {
            chunks.push(c);
        }
        let mut chunks: Vec<Chunk> = chunks
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep[i % keep.len()])
            .map(|(_, c)| c)
            .collect();
        if !chunks.is_empty() {
            let len = chunks.len();
            for &(a, b) in &swaps {
                chunks.swap(a % len, b % len);
            }
        }
        let mangled: Vec<u8> = chunks.iter().flat_map(encode_chunk).collect();
        assert_streaming_safety(&mangled);
    }

    #[test]
    fn chunk_stream_resyncs_at_next_intact_intra(
        lost_gof in 0usize..2,
        bit in 0u8..8,
    ) {
        // Corrupt every chunk of one GOF (frames 3k..3k+3): the receiver
        // must still deliver every frame of every later GOF, bit-exact.
        let (wire, clean) = sample_stream();
        let first = lost_gof * 3;
        let mut reader = ChunkReader::new(wire.as_slice());
        let mut bad = Vec::new();
        while let Some(c) = reader.next_chunk().unwrap() {
            let mut bytes = encode_chunk(&c);
            if c.kind == pcc::stream::ChunkKind::Frame
                && (first..first + 3).contains(&(c.frame_index as usize))
            {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 1 << bit;
            }
            bad.extend(bytes);
        }

        let d = device();
        let mut rx = Receiver::new(bad.as_slice(), &d);
        let mut delivered = Vec::new();
        while let Some(frame) = rx.recv_frame().unwrap() {
            assert_eq!(&frame.cloud, &clean[frame.frame_index], "frame {}", frame.frame_index);
            delivered.push(frame.frame_index);
        }
        let expect: Vec<usize> =
            (0..clean.len()).filter(|i| !(first..first + 3).contains(i)).collect();
        assert_eq!(delivered, expect, "must resync at the next intact I-frame");
        assert_eq!(rx.stats().frames_dropped, 3);
        // Losing the final GOF leaves no I-frame to re-anchor at; the
        // loss then surfaces as tail drops, not a resync.
        let expect_resyncs = usize::from(first + 3 < clean.len());
        assert_eq!(rx.stats().resyncs, expect_resyncs);
    }
}

//! Property-based corruption fuzzing: random byte mutations, truncations,
//! and splices against every decoder in the workspace. Decoders may
//! reject input or produce garbage values, but must never panic.

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::intra::{IntraCodec, IntraConfig, IntraFrame};
use pcc::types::VoxelizedCloud;
use proptest::prelude::*;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn sample_frame() -> IntraFrame {
    let cloud = catalog::by_name("Loot").unwrap().generator_with_points(600).frame_cloud(0);
    let vox = VoxelizedCloud::from_cloud(&cloud, 6);
    IntraCodec::new(IntraConfig::paper()).encode(&vox, &device())
}

fn sample_container() -> Vec<u8> {
    let video = catalog::by_name("Loot").unwrap().generate_scaled(2, 400);
    let encoded = PccCodec::new(Design::IntraInterV1).encode_video(&video, 6, &device());
    container::mux(&encoded)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn intra_decoder_survives_random_mutations(
        positions in prop::collection::vec(0usize..4096, 1..12),
        xor in 1u8..=255,
    ) {
        let frame = sample_frame();
        let codec = IntraCodec::new(IntraConfig::paper());
        let d = device();
        let mut bad = frame.clone();
        for &p in &positions {
            if !bad.geometry.is_empty() {
                let len = bad.geometry.len();
                bad.geometry[p % len] ^= xor;
            }
            if !bad.attribute.is_empty() {
                let len = bad.attribute.len();
                bad.attribute[p % len] ^= xor;
            }
        }
        let _ = codec.decode(&bad, &d); // outcome irrelevant; no panic
    }

    #[test]
    fn container_demux_survives_random_mutations(
        positions in prop::collection::vec(0usize..8192, 1..16),
        xor in 1u8..=255,
    ) {
        let mut bytes = sample_container();
        for &p in &positions {
            let len = bytes.len();
            bytes[p % len] ^= xor;
        }
        if let Ok(video) = container::demux(&bytes) {
            // Even structurally valid mutations must decode without panic.
            let _ = PccCodec::new(video.design).decode_video(&video, &device());
        }
    }

    #[test]
    fn container_demux_survives_random_splices(
        cut_at in 0usize..4096,
        insert in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = sample_container();
        let at = cut_at % bytes.len();
        let tail = bytes.split_off(at);
        bytes.extend(insert);
        bytes.extend(tail);
        if let Ok(video) = container::demux(&bytes) {
            let _ = PccCodec::new(video.design).decode_video(&video, &device());
        }
    }

    #[test]
    fn occupancy_decoder_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = pcc::octree::decode_occupancy(&bytes);
    }

    #[test]
    fn range_decoder_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        n in 0usize..64,
    ) {
        let mut model = pcc::entropy::ByteModel::new();
        let mut dec = pcc::entropy::RangeDecoder::new(&bytes);
        for _ in 0..n {
            let _ = dec.decode_byte(&mut model);
        }
    }
}

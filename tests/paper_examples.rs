//! The paper's worked examples (Figs. 5, 6, 7) driven through the public
//! API: three points with coordinates [0,0,0], [−1,0,0], [3,3,3] and
//! scalar-ish attributes 50/52/54.

use pcc::edge::{Device, PowerMode};
use pcc::inter::{InterCodec, InterConfig};
use pcc::intra::{IntraCodec, IntraConfig};
use pcc::octree::{ParallelOctree, SequentialOctree};
use pcc::types::{Point3, PointCloud, Rgb, VoxelizedCloud};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

/// The Fig. 5 frame: P0=[0,0,0], P1=[−1,0,0], P2=[3,3,3].
fn fig5_cloud() -> PointCloud {
    [
        (Point3::new(0.0, 0.0, 0.0), Rgb::gray(50)),
        (Point3::new(-1.0, 0.0, 0.0), Rgb::gray(52)),
        (Point3::new(3.0, 3.0, 3.0), Rgb::gray(54)),
    ]
    .into_iter()
    .collect()
}

#[test]
fn fig5_bounding_box_is_4x3x3() {
    // "the final bounding box cuboid with side lengths 4x3x3
    //  (x-axis: 3-(-1)=4, y-axis: 3-0=3, and z-axis 3-0=3)"
    let bb = fig5_cloud().bounding_box().unwrap();
    assert_eq!(bb.extents(), Point3::new(4.0, 3.0, 3.0));
    // Cubified for the octree: a power-of-two cube of side 4.
    assert_eq!(bb.cubify_pow2().extents(), Point3::new(4.0, 4.0, 4.0));
}

#[test]
fn fig5_parallel_octree_arrays() {
    // On the paper's 8-wide grid (depth 3 after translation), the code
    // array ends with 63 for P2's level-2 cell and 511 for its leaf, and
    // parent[7] = 4 points at the node whose code is 63 — reproduced here
    // structurally: each leaf's parent code is its own code >> 3.
    let vox = VoxelizedCloud::from_cloud(&fig5_cloud(), 3);
    let tree = ParallelOctree::from_coords(vox.coords(), 3);
    assert_eq!(tree.leaf_count(), 3);
    for level in 1..=3u8 {
        let l = tree.level(level);
        let up = tree.level(level - 1);
        for (code, &p) in l.codes.iter().zip(&l.parent) {
            assert_eq!(up.codes[p as usize], code.parent());
        }
    }
    // P2 is the last leaf in Morton order; on the translated 8-grid its
    // voxel is (7,6,6) -> the paper's "511" corresponds to the
    // all-high-octant cell; structurally: strictly largest code.
    let leaves = tree.leaf_codes();
    assert!(leaves.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn fig5_sequential_and_parallel_agree() {
    // The two pipelines of Fig. 5 must describe the same occupied voxel
    // set (the parallel one is the paper's proposal).
    let vox = VoxelizedCloud::from_cloud(&fig5_cloud(), 3);
    let seq = SequentialOctree::from_coords(vox.coords(), 3);
    let par = ParallelOctree::from_coords(vox.coords(), 3);
    assert_eq!(seq.occupancy(), par.occupancy());
    assert_eq!(seq.leaves(), par.leaves());
}

#[test]
fn fig5_quality_loss_is_bounded_by_a_voxel() {
    // "the P0 node now contains geometry information slightly different
    //  from the original" — voxel-precision loss only.
    let cloud = fig5_cloud();
    let vox = VoxelizedCloud::from_cloud(&cloud, 3);
    let codec = IntraCodec::new(IntraConfig::lossless());
    let d = device();
    let frame = codec.encode(&vox, &d);
    let dec = codec.decode(&frame, &d).unwrap().to_cloud();
    assert_eq!(dec.len(), 3);
    for (orig, _) in cloud.iter() {
        let nearest = dec
            .positions()
            .iter()
            .map(|p| p.distance(orig))
            .fold(f32::INFINITY, f32::min);
        assert!(nearest <= vox.voxel_size(), "error {nearest} > one voxel");
    }
}

#[test]
fn fig6_mid_plus_residual() {
    // "two vectors store the final data: Mid = 51, Delta = [0,0] for the
    //  first segment, and Mid = 54, Delta = [0] for the second" — the
    //  paper quantizes the ±1 residuals of segment one to zero. With the
    //  layer codec: medians 50-or-52 / 54 and residuals within one step.
    let values = vec![[50i32; 3], [52; 3]];
    let seg1 = pcc::intra::encode_layer(&values, 1, 4);
    assert_eq!(seg1.bases.len(), 1);
    let base = seg1.bases[0][0];
    assert!((50..=52).contains(&base), "base {base}");
    // Quantized residuals of a near-constant segment vanish.
    assert!(seg1.residuals.iter().all(|r| r[0] == 0));

    let seg2 = pcc::intra::encode_layer(&[[54; 3]], 1, 4);
    assert_eq!(seg2.bases[0], [54; 3]);
    assert_eq!(seg2.residuals, vec![[0; 3]]);
}

#[test]
fn fig7_inter_frame_reuse_and_delta() {
    // I-frame: P0=[0,0,0]/50, P1=[12,8,13]/52, P2=[19,26,58]/20.
    // P-frame: P0 identical, P1 moved one voxel with attr 51, P2 far off.
    let i_cloud: PointCloud = [
        (Point3::new(0.0, 0.0, 0.0), Rgb::gray(50)),
        (Point3::new(12.0, 8.0, 13.0), Rgb::gray(52)),
        (Point3::new(19.0, 26.0, 58.0), Rgb::gray(20)),
    ]
    .into_iter()
    .collect();
    let p_cloud: PointCloud = [
        (Point3::new(0.0, 0.0, 0.0), Rgb::gray(50)),
        (Point3::new(12.0, 8.0, 12.0), Rgb::gray(51)),
        (Point3::new(40.0, 55.0, 10.0), Rgb::gray(200)),
    ]
    .into_iter()
    .collect();
    let bb = pcc::types::Aabb::new(Point3::ORIGIN, Point3::new(64.0, 64.0, 64.0));
    let i_vox = VoxelizedCloud::from_cloud_in_box(&i_cloud, 6, &bb);
    let p_vox = VoxelizedCloud::from_cloud_in_box(&p_cloud, 6, &bb);

    let d = device();
    // Full-scale density chosen so this 3-voxel frame splits into the
    // paper's two segments (blocks_for keeps points-per-block constant).
    let cfg = InterConfig {
        blocks: 666_667,
        candidates: 4,
        reuse_threshold: 300,
        intra: IntraConfig::lossless(),
    };
    let codec = InterCodec::new(cfg);
    let intra = IntraCodec::new(cfg.intra);
    let dec_i = intra.decode(&intra.encode(&i_vox, &d), &d).unwrap();

    let enc = codec.encode(&p_vox, dec_i.colors(), &d);
    // The P0/P1 half of the frame reuses; the P2 half needs deltas.
    assert_eq!(enc.stats.reused + enc.stats.delta, 2, "two blocks in this tiny frame");
    assert!(enc.stats.reused >= 1, "the similar half must be reused");
    assert!(enc.stats.delta >= 1, "the dissimilar half must be delta-coded");

    // Decode and verify the reused points kept their I-frame colors and
    // the delta point reached its true value.
    let dec_p = codec.decode(&enc, dec_i.colors(), &d).unwrap();
    let dec_cloud = dec_p.to_cloud();
    let find = |target: Point3| -> Rgb {
        let (mut best, mut best_d) = (Rgb::BLACK, f32::INFINITY);
        for (p, c) in dec_cloud.iter() {
            let d2 = p.distance_squared(target);
            if d2 < best_d {
                best_d = d2;
                best = c;
            }
        }
        best
    };
    let c0 = find(Point3::new(0.0, 0.0, 0.0));
    assert!((c0.r as i32 - 50).abs() <= 2, "P0 color {c0}");
    let c2 = find(Point3::new(40.0, 55.0, 10.0));
    assert_eq!(c2, Rgb::gray(200), "P2 must be exactly delta-reconstructed");
}

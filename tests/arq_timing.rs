//! ARQ timing determinism: backoff sleeps and the recovery deadline run
//! on an injected clock, so a test can pin the *exact* NACK/recover/
//! degrade sequence — including one that would take 20 real seconds of
//! sleeping — and have it replay identically, instantly, on any machine.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pcc::adapt::{Clock, FakeClock};
use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::stream::{ArqConfig, Receiver, Retransmit, Sender, SharedRing, StreamConfig};
use pcc::types::Video;
use std::io::{self, Write};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn clip() -> Video {
    catalog::by_name("Soldier").unwrap().generate_scaled(9, 1_000)
}

/// A transport that keeps each `write` call as one record — the chunk
/// layer issues exactly one write per chunk, so records line up with
/// chunks and individual chunks can be dropped from the rebuilt wire.
#[derive(Default)]
struct RecordWire {
    records: Vec<Vec<u8>>,
}

impl Write for RecordWire {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.records.push(buf.to_vec());
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Records every NACKed sequence number on its way to the inner source.
struct Recording<T> {
    inner: T,
    log: Arc<Mutex<Vec<u32>>>,
}

impl<T: Retransmit> Retransmit for Recording<T> {
    fn retransmit(&mut self, seq: u32) -> Option<Vec<u8>> {
        self.log.lock().unwrap().push(seq);
        self.inner.retransmit(seq)
    }
}

/// A back channel that never delivers — every NACK burns a retry.
struct Never;

impl Retransmit for Never {
    fn retransmit(&mut self, _seq: u32) -> Option<Vec<u8>> {
        None
    }
}

/// Streams the clip, capturing per-chunk records and parking everything
/// in a retransmit ring. Record `i` carries wire seq `i` (header is
/// seq 0, frames follow, the end chunk is last).
fn recorded_session(video: &Video) -> (Vec<Vec<u8>>, SharedRing) {
    let codec = PccCodec::new(Design::IntraInterV1);
    let d = device();
    let ring = SharedRing::new(64);
    let mut sender = Sender::new(&codec, 7, &d, RecordWire::default(), &StreamConfig::default())
        .unwrap()
        .with_bounding_box(video.bounding_box().unwrap())
        .with_arq(ring.clone());
    for frame in video.iter() {
        sender.send_frame(&frame.cloud).unwrap();
    }
    let (wire, _) = sender.finish().unwrap();
    (wire.records, ring)
}

/// The wire with the chunks at `dropped` record indices removed.
fn wire_without(records: &[Vec<u8>], dropped: &[usize]) -> Vec<u8> {
    records
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .flat_map(|(_, r)| r.iter().copied())
        .collect()
}

#[test]
fn successful_recovery_pins_the_exact_nack_sequence_and_spends_no_time() {
    let video = clip();
    let (records, ring) = recorded_session(&video);
    assert_eq!(records.len(), video.len() + 2, "header + frames + end");
    let wire = wire_without(&records, &[2, 5]);

    let clock = FakeClock::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let d = device();
    let mut rx = Receiver::new(wire.as_slice(), &d).with_arq_clock(
        Recording { inner: ring, log: Arc::clone(&log) },
        ArqConfig::default(),
        Arc::new(clock.clone()),
    );
    let mut delivered = Vec::new();
    while let Some(f) = rx.recv_frame().unwrap() {
        delivered.push(f.frame_index);
    }
    let stats = rx.into_stats();

    assert_eq!(*log.lock().unwrap(), vec![2, 5], "exactly the two gaps, in order");
    assert_eq!(stats.arq_nacks, 2);
    assert_eq!(stats.arq_recovered, 2);
    assert_eq!(stats.arq_degraded, 0);
    assert_eq!(stats.frames_dropped, 0);
    assert_eq!(delivered, (0..video.len()).collect::<Vec<_>>());
    // First-attempt recoveries never back off: the clock must not move.
    assert_eq!(clock.now(), Duration::ZERO);
}

#[test]
fn the_deadline_cuts_retries_short_with_seconds_long_backoffs() {
    // 10 s backoffs against a 15 s deadline: attempt 0 fails and sleeps
    // 10 s, attempt 1 fails and sleeps another 10 s (capped), attempt 2
    // finds the deadline spent and degrades. Two NACKs, 20 s of modeled
    // time — a sequence no wall-clock test could afford to run.
    let video = clip();
    let (records, _ring) = recorded_session(&video);
    let wire = wire_without(&records, &[2]);
    let cfg = ArqConfig {
        retry_budget: 3,
        backoff_base: Duration::from_secs(10),
        backoff_cap: Duration::from_secs(10),
        deadline: Duration::from_secs(15),
        ..ArqConfig::default()
    };

    let run = || {
        let clock = FakeClock::new();
        let d = device();
        let mut rx = Receiver::new(wire.as_slice(), &d).with_arq_clock(
            Never,
            cfg.clone(),
            Arc::new(clock.clone()),
        );
        let mut delivered = 0usize;
        while let Some(_f) = rx.recv_frame().unwrap() {
            delivered += 1;
        }
        (delivered, rx.into_stats(), clock.now())
    };

    let (delivered, stats, elapsed) = run();
    assert_eq!(stats.arq_nacks, 2, "the deadline fires before the third retry: {stats:?}");
    assert_eq!(stats.arq_degraded, 1);
    assert_eq!(stats.arq_recovered, 0);
    assert_eq!(elapsed, Duration::from_secs(20), "two capped backoffs, nothing more");
    // The unrecovered chunk is a P-frame: it degrades to exactly one
    // dropped frame through the base skip-and-resync path.
    assert_eq!(stats.frames_dropped, 1);
    assert_eq!(delivered, video.len() - 1);

    // The whole timing sequence replays exactly.
    let again = run();
    assert_eq!((delivered, stats, elapsed), again);
}

#[test]
fn receiver_feedback_publishes_counters_per_frame() {
    let video = clip();
    let (records, _ring) = recorded_session(&video);
    let wire = wire_without(&records, &[]);

    let feedback = pcc::stream::SharedStats::new();
    let d = device();
    let mut rx = Receiver::new(wire.as_slice(), &d).with_feedback(feedback.clone());
    let mut seen = 0usize;
    while let Some(_f) = rx.recv_frame().unwrap() {
        seen += 1;
        assert_eq!(
            feedback.snapshot().frames_delivered,
            seen,
            "each recv_frame must publish a fresh snapshot"
        );
    }
    assert!(feedback.snapshot().clean_shutdown);
    assert_eq!(feedback.snapshot().frames_delivered, video.len());
}

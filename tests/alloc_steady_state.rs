//! Zero-allocation steady-state guarantee for the per-frame encode hot
//! path (the PR-6 perf tentpole).
//!
//! A counting global allocator wraps the system allocator; after a few
//! warm-up frames through a session arena, encoding further frames on
//! the single-threaded entropy-off path must perform **zero** heap
//! allocations (`alloc`, `alloc_zeroed`, and `realloc` all count) — for
//! the intra and inter codecs, with probes off and on.
//!
//! Everything lives in ONE `#[test]` function: the counter is global, so
//! a second test running on a sibling harness thread would pollute the
//! measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pcc_edge::{Device, PowerMode};
use pcc_inter::{InterArena, InterCodec, InterConfig, InterEncoded};
use pcc_intra::{FrameArena, IntraCodec, IntraConfig, IntraFrame};
use pcc_types::{Point3, PointCloud, Rgb, VoxelizedCloud};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`, only adding a relaxed
// counter bump — layout contracts are untouched.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const WARMUP_FRAMES: usize = 8;
const MEASURED_FRAMES: usize = 4;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

/// A deterministic synthetic frame; `phase` varies geometry and colors so
/// consecutive frames differ (stale-buffer reuse would corrupt output and
/// trip the byte-identity tests, and varying sizes exercise resize paths).
fn frame(phase: usize) -> VoxelizedCloud {
    let n = 3000 + (phase % 3) * 500;
    let cloud: PointCloud = (0..n)
        .map(|i| {
            let x = ((i + phase * 7) % 50) as f32;
            let y = ((i / 50) % 40) as f32;
            let z = (i / 2000) as f32;
            let c = ((i * 3 + phase * 11) % 256) as u8;
            (Point3::new(x, y, z), Rgb::new(c, 255 - c, 128))
        })
        .collect();
    VoxelizedCloud::from_cloud(&cloud, 6)
}

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn encode_hot_path_is_allocation_free_after_warmup() {
    // Single-threaded, entropy off — the configuration the zero-alloc
    // guarantee covers (parallel fan-out spawns scoped threads whose
    // stacks allocate; entropy coding's output is unbounded up front).
    let intra_cfg = IntraConfig::paper().with_threads(1);
    let d = device();

    // Pre-build every frame: voxelization allocates by design (it is
    // per-capture input conversion, not part of the encode hot path).
    let frames: Vec<VoxelizedCloud> =
        (0..WARMUP_FRAMES + MEASURED_FRAMES).map(frame).collect();

    // Reference colors for the inter legs: the decoded I-frame, exactly
    // what a session's decoder would hold.
    let intra = IntraCodec::new(intra_cfg);
    let reference: Vec<Rgb> = {
        let f = intra.encode(&frames[0], &d);
        d.reset();
        intra.decode(&f, &d).unwrap().colors().to_vec()
    };

    let inter_cfg = InterConfig { intra: intra_cfg, ..InterConfig::v1() };
    let inter = InterCodec::new(inter_cfg);

    for probes in [false, true] {
        pcc_probe::set_enabled(probes);

        // ---- Intra leg ----
        let mut arena = FrameArena::new();
        let mut out = IntraFrame::default();
        let mut measured = 0u64;
        for (i, vox) in frames.iter().enumerate() {
            d.reset();
            let before = alloc_count();
            intra.encode_into(vox, &d, &mut arena, &mut out);
            let after = alloc_count();
            // Drain thread-local probe buffers without dropping their
            // capacity (take_report would mem::take them away).
            pcc_probe::discard_thread();
            if i >= WARMUP_FRAMES {
                measured += after - before;
            }
        }
        assert_eq!(
            measured, 0,
            "intra encode allocated {measured} times across {MEASURED_FRAMES} \
             steady-state frames (probes={probes})"
        );

        // ---- Inter leg ----
        let mut arena = InterArena::new();
        let mut out = InterEncoded::default();
        let mut measured = 0u64;
        for (i, vox) in frames.iter().enumerate() {
            d.reset();
            let before = alloc_count();
            inter.encode_into(vox, &reference, &d, &mut arena, &mut out);
            let after = alloc_count();
            pcc_probe::discard_thread();
            if i >= WARMUP_FRAMES {
                measured += after - before;
            }
        }
        assert_eq!(
            measured, 0,
            "inter encode allocated {measured} times across {MEASURED_FRAMES} \
             steady-state frames (probes={probes})"
        );
    }
    pcc_probe::set_enabled(false);
}

//! Robustness: corrupted and truncated streams must be rejected with
//! errors, never panics or silent garbage.

use pcc::baseline::{CwipcCodec, Tmc13Codec};
use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::intra::{IntraCodec, IntraConfig};
use pcc::types::VoxelizedCloud;

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

fn sample_vox() -> VoxelizedCloud {
    let cloud = catalog::by_name("Loot").unwrap().generator_with_points(1_000).frame_cloud(0);
    VoxelizedCloud::from_cloud(&cloud, 7)
}

#[test]
fn intra_frame_truncations_never_panic() {
    let d = device();
    let codec = IntraCodec::new(IntraConfig::paper());
    let frame = codec.encode(&sample_vox(), &d);
    for cut in (0..frame.geometry.len()).step_by(7) {
        let mut bad = frame.clone();
        bad.geometry.truncate(cut);
        assert!(codec.decode(&bad, &d).is_err(), "geometry cut at {cut} accepted");
    }
    for cut in (0..frame.attribute.len().saturating_sub(1)).step_by(11) {
        let mut bad = frame.clone();
        bad.attribute.truncate(cut);
        // Either an explicit error or (for cuts landing on a valid
        // prefix) a voxel-count mismatch — never a panic.
        let _ = codec.decode(&bad, &d);
    }
}

#[test]
fn intra_frame_bitflips_are_handled() {
    let d = device();
    let codec = IntraCodec::new(IntraConfig::paper());
    let frame = codec.encode(&sample_vox(), &d);
    for pos in (0..frame.geometry.len()).step_by(13) {
        let mut bad = frame.clone();
        bad.geometry[pos] ^= 0x55;
        let _ = codec.decode(&bad, &d); // must not panic
    }
}

#[test]
fn tmc13_corruption_is_rejected() {
    let d = device();
    let codec = Tmc13Codec::default();
    let frame = codec.encode(&sample_vox(), &d);
    let mut bad = frame.clone();
    bad.geometry.truncate(3);
    assert!(codec.decode(&bad, &d).is_err());
    let mut bad = frame.clone();
    bad.attribute.truncate(2);
    assert!(codec.decode(&bad, &d).is_err());
}

#[test]
fn cwipc_predicted_without_reference_is_an_error() {
    let d = device();
    let codec = CwipcCodec::default();
    let vox = sample_vox();
    let i = codec.encode_intra(&vox, &d);
    let dec_i = codec.decode(&i, None, &d).unwrap();
    let p = codec.encode_predicted(&vox, &dec_i, &d);
    assert!(codec.decode(&p, None, &d).is_err());
}

#[test]
fn video_stream_with_shuffled_frames_fails_cleanly() {
    let d = device();
    let video = catalog::by_name("Redandblack").unwrap().generate_scaled(4, 800);
    let codec = PccCodec::new(Design::IntraInterV1);
    let mut enc = codec.encode_video(&video, 7, &d);
    // Move a P-frame to the front: decoding must fail with
    // MissingReference, not panic.
    enc.frames.swap(0, 1);
    assert!(codec.decode_video(&enc, &d).is_err());
}

#[test]
fn empty_video_round_trips() {
    let d = device();
    let video = pcc::types::Video::new("empty", vec![], 30.0);
    for design in Design::ALL {
        let codec = PccCodec::new(design);
        let enc = codec.encode_video(&video, 7, &d);
        let dec = codec.decode_video(&enc, &d).unwrap();
        assert!(dec.is_empty(), "{design}");
    }
}

//! Device-model accounting invariants: stage sums, energy consistency,
//! power modes, and the calibration shape the figures depend on.

use pcc::core::{Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::types::Video;

fn video() -> Video {
    catalog::by_name("Loot").unwrap().generate_scaled(3, 3_000)
}

#[test]
fn stage_sums_equal_totals() {
    let d = Device::jetson_agx_xavier(PowerMode::W15);
    let enc = PccCodec::new(Design::IntraInterV1).encode_video(&video(), 7, &d);
    for t in &enc.encode_timelines {
        let total = t.total_modeled_ms().as_f64();
        let by_stage: f64 = t.by_stage().values().map(|(ms, _)| ms.as_f64()).sum();
        assert!((total - by_stage).abs() < 1e-9, "stage sum {by_stage} != total {total}");
        let energy = t.total_energy_j().as_f64();
        let by_stage_e: f64 = t.by_stage().values().map(|(_, j)| j.as_f64()).sum();
        assert!((energy - by_stage_e).abs() < 1e-12);
        assert!(energy > 0.0);
    }
}

#[test]
fn per_op_shares_sum_to_one() {
    let d = Device::jetson_agx_xavier(PowerMode::W15);
    let enc = PccCodec::new(Design::IntraInterV2).encode_video(&video(), 7, &d);
    let t = &enc.encode_timelines[1]; // a P-frame
    let share_sum: f64 =
        t.by_op().keys().map(|op| t.energy_share_of(op)).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
}

#[test]
fn w10_mode_slows_by_1_29x() {
    let v = video();
    let d15 = Device::jetson_agx_xavier(PowerMode::W15);
    let d10 = Device::jetson_agx_xavier(PowerMode::W10);
    let codec = PccCodec::new(Design::IntraInterV1);
    let t15: f64 = codec
        .encode_video(&v, 7, &d15)
        .encode_timelines
        .iter()
        .map(|t| t.total_modeled_ms().as_f64())
        .sum();
    let t10: f64 = codec
        .encode_video(&v, 7, &d10)
        .encode_timelines
        .iter()
        .map(|t| t.total_modeled_ms().as_f64())
        .sum();
    let ratio = t10 / t15;
    // Kernel-launch overhead keeps the end-to-end ratio just below the
    // pure clock ratio of 1.29 (paper Sec. VI-C).
    assert!((1.2..1.35).contains(&ratio), "W10/W15 ratio {ratio:.3}");
}

#[test]
fn inter_energy_breakdown_has_fig9_shape() {
    // Fig. 9: the 2-norm computation (diff_squared + squared_sum)
    // dominates the inter-frame attribute energy, with address
    // generation the second-largest consumer.
    let d = Device::jetson_agx_xavier(PowerMode::W15);
    let enc = PccCodec::new(Design::IntraInterV1).encode_video(&video(), 7, &d);
    let t = &enc.encode_timelines[1]; // P-frame
    let inter_total = t.stage_energy_j("inter_attr").as_f64();
    assert!(inter_total > 0.0, "P-frame must charge inter_attr stages");
    let share = |name: &str| {
        t.by_op().get(name).map(|(_, j)| j.as_f64()).unwrap_or(0.0) / inter_total
    };
    let two_norm = share("diff_squared") + share("squared_sum");
    let addr = share("addr_gen");
    assert!(two_norm > 0.3, "2-norm share only {two_norm:.2}");
    assert!(addr > 0.15, "addr_gen share only {addr:.2}");
    assert!(two_norm > addr, "2-norm should dominate (paper: 51% vs 32%)");
}

#[test]
fn proposed_encode_uses_gpu_baselines_use_cpu() {
    let d = Device::jetson_agx_xavier(PowerMode::W15);
    let v = video();
    let enc = PccCodec::new(Design::IntraOnly).encode_video(&v, 7, &d);
    assert!(enc.encode_timelines[0]
        .records()
        .iter()
        .all(|r| r.unit == pcc::edge::ExecUnit::Gpu));
    let enc = PccCodec::new(Design::Tmc13).encode_video(&v, 7, &d);
    assert!(enc.encode_timelines[0]
        .records()
        .iter()
        .all(|r| r.unit == pcc::edge::ExecUnit::Cpu));
}

#[test]
fn device_reset_between_frames_keeps_timelines_independent() {
    let d = Device::jetson_agx_xavier(PowerMode::W15);
    let enc = PccCodec::new(Design::IntraOnly).encode_video(&video(), 7, &d);
    // All-intra frames of similar size should have similar modeled cost;
    // if timelines leaked across frames they would grow monotonically.
    let ms: Vec<f64> =
        enc.encode_timelines.iter().map(|t| t.total_modeled_ms().as_f64()).collect();
    let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ms.iter().copied().fold(0.0f64, f64::max);
    assert!(max / min < 1.5, "frame costs diverge: {ms:?}");
    // And the device is drained afterwards.
    assert!(d.timeline().is_empty());
}

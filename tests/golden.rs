//! Golden-vector conformance suite: exact digests of encoded bitstreams
//! for every wire format in the workspace. These pin the *bytes*, not
//! just round-trip behaviour — any change to an encoder, a container
//! field, or a chunk header shows up here as a digest mismatch.
//!
//! If a test in this file fails and the format change is DELIBERATE,
//! re-run with the printed `actual` value and bump the expected digest
//! in this file (and say so in the commit message). If the change is
//! not deliberate, you have a silent format regression — fix the code,
//! not the vector.

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{Device, PowerMode};
use pcc::inter::{InterCodec, InterConfig};
use pcc::intra::{IntraCodec, IntraConfig};
use pcc::stream::{Sender, StreamConfig};
use pcc::types::{Video, VoxelizedCloud};

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn assert_digest(what: &str, chunks: &[&[u8]], expected: u64) {
    let actual = fnv1a(chunks);
    assert_eq!(
        actual, expected,
        "golden vector drift for {what}: actual digest {actual:#018x}, \
         expected {expected:#018x}. If this format change is deliberate, \
         bump the expected digest in tests/golden.rs; otherwise an encoder \
         or wire format silently changed."
    );
}

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

/// The fixed input every vector is derived from: a deterministic 2-frame
/// Longdress slice. Changing the synthetic dataset generator will — by
/// design — fail every vector below.
fn golden_video() -> Video {
    catalog::by_name("Longdress").expect("Table-I video").generate_scaled(2, 1_500)
}

fn golden_vox(frame: usize) -> VoxelizedCloud {
    let v = golden_video();
    VoxelizedCloud::from_cloud(&v.frame(frame).unwrap().cloud, 7)
}

#[test]
fn intra_single_layer_vector() {
    let cfg = IntraConfig { two_layer: false, ..IntraConfig::default() }.with_threads(1);
    let frame = IntraCodec::new(cfg).encode(&golden_vox(0), &device());
    assert_digest(
        "intra single-layer (geometry + attribute)",
        &[&frame.geometry, &frame.attribute],
        0x5e49_9ed1_4cca_7dea,
    );
}

#[test]
fn intra_two_layer_vector() {
    let cfg = IntraConfig { two_layer: true, ..IntraConfig::default() }.with_threads(1);
    let frame = IntraCodec::new(cfg).encode(&golden_vox(0), &device());
    assert_digest(
        "intra two-layer (geometry + attribute)",
        &[&frame.geometry, &frame.attribute],
        0xf01c_1fd4_8e07_df6c,
    );
}

/// Encodes the golden frame in the brick layout at a given thread count.
fn brick_frame(two_layer: bool, threads: usize) -> pcc::intra::IntraFrame {
    let cfg = IntraConfig { two_layer, ..IntraConfig::default() }
        .with_bricks(2)
        .with_threads(threads);
    IntraCodec::new(cfg).encode(&golden_vox(0), &device())
}

#[test]
fn brick_single_layer_vector() {
    let frame = brick_frame(false, 1);
    assert_eq!(frame.geometry.first(), Some(&pcc::intra::BRICK_MAGIC), "brick magic moved");
    assert_digest(
        "brick single-layer (geometry + attribute)",
        &[&frame.geometry, &frame.attribute],
        0xe99d_d50c_d748_270a,
    );
    // The brick wire format is thread-count invariant: per-brick stages
    // run single-threaded so parallelism never leaks into the bytes.
    for threads in [2, 0] {
        let other = brick_frame(false, threads);
        assert_eq!(other.geometry, frame.geometry, "geometry drifted at threads={threads}");
        assert_eq!(other.attribute, frame.attribute, "attribute drifted at threads={threads}");
    }
}

#[test]
fn brick_two_layer_vector() {
    let frame = brick_frame(true, 1);
    assert_digest(
        "brick two-layer (geometry + attribute)",
        &[&frame.geometry, &frame.attribute],
        0x5dd1_9d94_a1e9_8115,
    );
    for threads in [2, 0] {
        let other = brick_frame(true, threads);
        assert_eq!(other.geometry, frame.geometry, "geometry drifted at threads={threads}");
        assert_eq!(other.attribute, frame.attribute, "attribute drifted at threads={threads}");
    }
}

#[test]
fn inter_v1_vector() {
    let d = device();
    let (i_vox, p_vox) = (golden_vox(0), golden_vox(1));
    let intra = IntraCodec::new(IntraConfig::default().with_threads(1));
    let reference =
        intra.decode(&intra.encode(&i_vox, &d), &d).expect("reference decodes").colors().to_vec();
    let cfg =
        InterConfig { intra: IntraConfig::default().with_threads(1), ..InterConfig::v1() };
    let enc = InterCodec::new(cfg).encode(&p_vox, &reference, &d);
    assert_digest(
        "inter V1 P-frame (geometry + attribute)",
        &[&enc.frame.geometry, &enc.frame.attribute],
        0x417e_db61_2ff0_9759,
    );
}

#[test]
fn inter_v2_vector() {
    let d = device();
    let (i_vox, p_vox) = (golden_vox(0), golden_vox(1));
    let intra = IntraCodec::new(IntraConfig::default().with_threads(1));
    let reference =
        intra.decode(&intra.encode(&i_vox, &d), &d).expect("reference decodes").colors().to_vec();
    let cfg =
        InterConfig { intra: IntraConfig::default().with_threads(1), ..InterConfig::v2() };
    let enc = InterCodec::new(cfg).encode(&p_vox, &reference, &d);
    assert_digest(
        "inter V2 P-frame (geometry + attribute)",
        &[&enc.frame.geometry, &enc.frame.attribute],
        0xbdcf_73f6_a51a_48a4,
    );
}

#[test]
fn pccv_container_vector() {
    let d = device();
    let encoded = PccCodec::new(Design::IntraInterV1).encode_video(&golden_video(), 7, &d);
    let bytes = container::mux(&encoded);
    assert_eq!(&bytes[..4], b"PCCV", "container magic moved");
    assert_digest("PCCV container (2-frame IntraInterV1)", &[&bytes], 0x601b_aa1d_f072_1ec0);
}

#[test]
fn pcs1_chunk_stream_vector() {
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV1);
    // StreamConfig::default() pins stream_id = 1; the wire is fully
    // deterministic (headers, CRCs, payloads).
    let mut tx = Sender::new(&codec, 7, &d, Vec::new(), &StreamConfig::default()).unwrap();
    for frame in golden_video().iter() {
        tx.send_frame(&frame.cloud).unwrap();
    }
    let (wire, stats) = tx.finish().unwrap();
    assert!(stats.clean_shutdown);
    assert_digest("PCS1 chunk stream (2-frame IntraInterV1)", &[&wire], 0x7988_ced3_8cfe_4086);
}

//! Integration tests for the tooling layers: the byte container, the
//! Chrome-trace exporter, and the alternative G-PCC attribute transform.

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{trace, Device, PowerMode};
use pcc::raht::{predicting_forward, predicting_inverse};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

#[test]
fn container_survives_a_file_round_trip() {
    let video = catalog::by_name("Soldier").unwrap().generate_scaled(3, 1_000);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV2);
    let encoded = codec.encode_video(&video, 7, &d);
    let bytes = container::mux(&encoded);

    let dir = std::env::temp_dir().join("pcc_container_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.pccv");
    std::fs::write(&path, &bytes).unwrap();
    let read_back = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let demuxed = container::demux(&read_back).unwrap();
    assert_eq!(demuxed.design, Design::IntraInterV2);
    let decoded = codec.decode_video(&demuxed, &d).unwrap();
    assert_eq!(decoded.len(), video.len());
    // Reuse statistics survive the container.
    let reuse: Vec<_> = demuxed.frames.iter().filter_map(|f| f.reuse_fraction()).collect();
    assert_eq!(reuse.len(), 2, "two P-frames in IPP over 3 frames");
}

#[test]
fn traces_cover_all_designs() {
    let video = catalog::by_name("Loot").unwrap().generate_scaled(1, 800);
    let d = device();
    for design in Design::ALL {
        let encoded = PccCodec::new(design).encode_video(&video, 7, &d);
        let json = trace::to_chrome_trace(&encoded.encode_timelines[0]);
        assert!(json.contains("traceEvents"), "{design}");
        assert!(json.matches("\"ph\":\"X\"").count() >= 3, "{design} has too few events");
        // Events must carry the model's energy annotations.
        assert!(json.contains("energy_mj"), "{design}");
    }
}

/// A minimal JSON syntax checker — enough to prove the trace exporter
/// emits well-formed JSON without pulling in a parser dependency.
/// Returns the rest of the input after one complete value.
fn json_value(s: &[u8]) -> Result<&[u8], String> {
    let s = skip_ws(s);
    match s.first() {
        Some(b'{') => {
            let mut s = skip_ws(&s[1..]);
            if s.first() == Some(&b'}') {
                return Ok(&s[1..]);
            }
            loop {
                s = json_string(skip_ws(s))?;
                s = skip_ws(s);
                if s.first() != Some(&b':') {
                    return Err("expected ':' in object".into());
                }
                s = json_value(&s[1..])?;
                s = skip_ws(s);
                match s.first() {
                    Some(b',') => s = &s[1..],
                    Some(b'}') => return Ok(&s[1..]),
                    _ => return Err("expected ',' or '}' in object".into()),
                }
            }
        }
        Some(b'[') => {
            let mut s = skip_ws(&s[1..]);
            if s.first() == Some(&b']') {
                return Ok(&s[1..]);
            }
            loop {
                s = json_value(s)?;
                s = skip_ws(s);
                match s.first() {
                    Some(b',') => s = &s[1..],
                    Some(b']') => return Ok(&s[1..]),
                    _ => return Err("expected ',' or ']' in array".into()),
                }
            }
        }
        Some(b'"') => json_string(s),
        Some(b't') => s.strip_prefix(b"true" as &[u8]).ok_or("bad literal".into()),
        Some(b'f') => s.strip_prefix(b"false" as &[u8]).ok_or("bad literal".into()),
        Some(b'n') => s.strip_prefix(b"null" as &[u8]).ok_or("bad literal".into()),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = s
                .iter()
                .position(|&b| !(b.is_ascii_digit() || b"+-.eE".contains(&b)))
                .unwrap_or(s.len());
            if end == 0 {
                Err("empty number".into())
            } else {
                Ok(&s[end..])
            }
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

fn json_string(s: &[u8]) -> Result<&[u8], String> {
    if s.first() != Some(&b'"') {
        return Err("expected string".into());
    }
    let mut i = 1;
    while i < s.len() {
        match s[i] {
            b'\\' => i += 2,
            b'"' => return Ok(&s[i + 1..]),
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

fn skip_ws(s: &[u8]) -> &[u8] {
    let n = s.iter().take_while(|b| b" \t\r\n".contains(b)).count();
    &s[n..]
}

fn assert_parses_as_json(json: &str) {
    let rest = json_value(json.as_bytes()).unwrap_or_else(|e| panic!("invalid JSON: {e}"));
    assert!(skip_ws(rest).is_empty(), "trailing garbage after JSON value");
}

#[test]
fn measured_trace_covers_the_instrumented_pipeline() {
    // An end-to-end encode+decode with probes recording must leave a
    // span for every instrumented pipeline stage, and the Chrome-trace
    // export of those spans must be well-formed JSON.
    let video = catalog::by_name("Redandblack").unwrap().generate_scaled(2, 2_000);
    let d = device();
    let was_enabled = pcc::probe::enabled();
    pcc::probe::set_enabled(true);
    let _ = pcc::probe::take_report(); // drop spans from earlier tests
    let codec = PccCodec::new(Design::IntraInterV1);
    let encoded = codec.encode_video(&video, 7, &d);
    codec.decode_video(&encoded, &d).unwrap();
    let report = pcc::probe::take_report();
    pcc::probe::set_enabled(was_enabled);

    let expected = [
        "morton/codegen",
        "morton/radix_sort",
        "octree/compact",
        "octree/occupancy",
        "intra/gather",
        "intra/layer_encode",
        "intra/layer_decode",
        "inter/match",
        "inter/delta",
        "frame/encode",
        "frame/decode",
    ];
    for stage in expected {
        assert!(
            report.stage(stage).is_some_and(|s| s.calls >= 1),
            "no span recorded for stage {stage}"
        );
    }
    let distinct: std::collections::BTreeSet<_> =
        report.spans().iter().map(|s| s.stage).collect();
    assert!(distinct.len() >= 6, "only {} distinct stages: {distinct:?}", distinct.len());

    let json = trace::spans_to_chrome_trace(report.spans());
    assert_parses_as_json(&json);
    assert!(json.contains("traceEvents"));
    for stage in expected {
        assert!(json.contains(stage), "trace JSON missing stage {stage}");
    }
    // The modeled exporter must emit well-formed JSON too.
    assert_parses_as_json(&trace::to_chrome_trace(&encoded.encode_timelines[0]));
}

#[test]
fn predicting_transform_is_competitive_with_raht_on_real_frames() {
    // The paper's G-PCC background lists three attribute methods; the
    // predicting transform must round-trip and land in the same size
    // ballpark as RAHT on a real synthetic frame.
    let cloud = catalog::by_name("Longdress").unwrap().generator_with_points(4_000).frame_cloud(0);
    let depth = pcc::datasets::density_matched_depth(cloud.len());
    let vox = pcc::types::VoxelizedCloud::from_cloud(&cloud, depth).dedup_mean();
    // Both transforms consume strictly ascending Morton codes.
    let sorted = pcc::morton::sorted_permutation(&vox);
    let gathered = vox.gather(&sorted.perm);
    let codes = sorted.codes;
    let attrs: Vec<[f64; 3]> = gathered.colors().iter().map(|c| c.to_f64()).collect();

    let qstep = 1.0;
    let pred = predicting_forward(&codes, &attrs, qstep);
    let dec = predicting_inverse(&codes, &pred);
    for (a, d) in attrs.iter().zip(&dec) {
        for ch in 0..3 {
            assert!((a[ch] - d[ch]).abs() <= qstep / 2.0 + 1e-9);
        }
    }

    let weights = vec![1.0; codes.len()];
    let raht = pcc::raht::forward(&codes, &attrs, &weights, depth, qstep);
    let ratio = pred.payload_bytes() as f64 / raht.payload_bytes() as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "predicting/raht payload ratio {ratio:.2} out of family"
    );
}

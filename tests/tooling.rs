//! Integration tests for the tooling layers: the byte container, the
//! Chrome-trace exporter, and the alternative G-PCC attribute transform.

use pcc::core::{container, Design, PccCodec};
use pcc::datasets::catalog;
use pcc::edge::{trace, Device, PowerMode};
use pcc::raht::{predicting_forward, predicting_inverse};

fn device() -> Device {
    Device::jetson_agx_xavier(PowerMode::W15)
}

#[test]
fn container_survives_a_file_round_trip() {
    let video = catalog::by_name("Soldier").unwrap().generate_scaled(3, 1_000);
    let d = device();
    let codec = PccCodec::new(Design::IntraInterV2);
    let encoded = codec.encode_video(&video, 7, &d);
    let bytes = container::mux(&encoded);

    let dir = std::env::temp_dir().join("pcc_container_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.pccv");
    std::fs::write(&path, &bytes).unwrap();
    let read_back = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let demuxed = container::demux(&read_back).unwrap();
    assert_eq!(demuxed.design, Design::IntraInterV2);
    let decoded = codec.decode_video(&demuxed, &d).unwrap();
    assert_eq!(decoded.len(), video.len());
    // Reuse statistics survive the container.
    let reuse: Vec<_> = demuxed.frames.iter().filter_map(|f| f.reuse_fraction()).collect();
    assert_eq!(reuse.len(), 2, "two P-frames in IPP over 3 frames");
}

#[test]
fn traces_cover_all_designs() {
    let video = catalog::by_name("Loot").unwrap().generate_scaled(1, 800);
    let d = device();
    for design in Design::ALL {
        let encoded = PccCodec::new(design).encode_video(&video, 7, &d);
        let json = trace::to_chrome_trace(&encoded.encode_timelines[0]);
        assert!(json.contains("traceEvents"), "{design}");
        assert!(json.matches("\"ph\":\"X\"").count() >= 3, "{design} has too few events");
        // Events must carry the model's energy annotations.
        assert!(json.contains("energy_mj"), "{design}");
    }
}

#[test]
fn predicting_transform_is_competitive_with_raht_on_real_frames() {
    // The paper's G-PCC background lists three attribute methods; the
    // predicting transform must round-trip and land in the same size
    // ballpark as RAHT on a real synthetic frame.
    let cloud = catalog::by_name("Longdress").unwrap().generator_with_points(4_000).frame_cloud(0);
    let depth = pcc::datasets::density_matched_depth(cloud.len());
    let vox = pcc::types::VoxelizedCloud::from_cloud(&cloud, depth).dedup_mean();
    // Both transforms consume strictly ascending Morton codes.
    let sorted = pcc::morton::sorted_permutation(&vox);
    let gathered = vox.gather(&sorted.perm);
    let codes = sorted.codes;
    let attrs: Vec<[f64; 3]> = gathered.colors().iter().map(|c| c.to_f64()).collect();

    let qstep = 1.0;
    let pred = predicting_forward(&codes, &attrs, qstep);
    let dec = predicting_inverse(&codes, &pred);
    for (a, d) in attrs.iter().zip(&dec) {
        for ch in 0..3 {
            assert!((a[ch] - d[ch]).abs() <= qstep / 2.0 + 1e-9);
        }
    }

    let weights = vec![1.0; codes.len()];
    let raht = pcc::raht::forward(&codes, &attrs, &weights, depth, qstep);
    let ratio = pred.payload_bytes() as f64 / raht.payload_bytes() as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "predicting/raht payload ratio {ratio:.2} out of family"
    );
}
